// Package cli is the implementation behind cmd/stamp (and, for one
// deprecation release, the legacy single-purpose binaries): subcommand
// dispatch, one shared flag/JSON/progress layer, and unified exit codes.
//
// Exit codes are the operator contract, identical across every
// subcommand:
//
//	0  success
//	1  runtime failure, including any sim-vs-live divergence
//	2  usage error (unknown subcommand/experiment/flag)
package cli

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"stamp/internal/lab"
)

// Exit codes shared by every subcommand.
const (
	ExitOK      = 0
	ExitFailure = 1
	ExitUsage   = 2
)

// SignalContext returns a context canceled on SIGINT/SIGTERM for the
// cmd mains. After the first signal fires, default signal handling is
// restored, so a second Ctrl-C always kills the process — even if some
// backend is slow to observe the cancellation.
func SignalContext() context.Context {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ctx.Done()
		stop()
	}()
	return ctx
}

// env carries the process plumbing through subcommands, so tests drive
// the full CLI — flags to exit code — in-process.
type env struct {
	ctx            context.Context
	stdout, stderr io.Writer
}

// Main dispatches the stamp subcommands and returns the process exit
// code. ctx cancellation (Ctrl-C in cmd/stamp) interrupts in-flight
// experiment trials.
func Main(ctx context.Context, argv []string, stdout, stderr io.Writer) int {
	e := env{ctx: ctx, stdout: stdout, stderr: stderr}
	if len(argv) == 0 {
		usage(stderr)
		return ExitUsage
	}
	cmd, rest := argv[0], argv[1:]
	switch cmd {
	case "run":
		return e.cmdRun(rest)
	case "list":
		return e.cmdList(rest)
	case "lab":
		return e.cmdLab(rest)
	case "flood":
		return e.cmdFlood(rest)
	case "atlas":
		return e.cmdAtlas(rest)
	case "steer":
		return e.cmdSteer(rest)
	case "topo":
		return e.cmdTopo(rest)
	case "asrel":
		return e.cmdAsrel(rest)
	case "daemon":
		return e.cmdDaemon(rest)
	case "serve":
		return e.cmdServe(rest)
	case "help", "-h", "-help", "--help":
		usage(stdout)
		return ExitOK
	}
	fmt.Fprintf(stderr, "stamp: unknown subcommand %q\n\n", cmd)
	usage(stderr)
	return ExitUsage
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage: stamp <subcommand> [flags]

subcommands:
  run <experiment>  run a registered experiment (stamp list prints them)
  list              list the experiment registry
  lab               live-emulation convergence + differential validation
                    (sugar for: run emu-converge -backend emu)
  flood             packet-level loss workload driver
                    (sugar for: run loss)
  atlas             internet-scale convergence on the flat CSR engine
                    (sugar for: run atlas-converge; -loss for atlas-loss)
  steer             four-arm latency steering grid: BGP / R-BGP / locked
                    STAMP / STAMP-steer (sugar for: run steer-latency;
                    -loss for steer-loss)
  topo              generate a synthetic AS topology (CAIDA AS-rel format),
                    or print -stats for any graph (-in loads a snapshot)
  asrel             infer AS relationships from AS paths (Gao's algorithm)
  daemon            run one live STAMP routing process (one color) over TCP
  serve             always-on service mode: converge an atlas fixpoint, apply
                    replayed/admin events, serve /metrics, /events, /state
  help              this text

exit codes: 0 success, 1 failure or sim-vs-live divergence, 2 usage.
`)
}

// fail prints a runtime error in the canonical form.
func (e env) fail(err error) int {
	// Cancellation is the operator's own Ctrl-C, not a failure worth a
	// stack of wrapped context noise.
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(e.stderr, "stamp: interrupted")
		return ExitFailure
	}
	fmt.Fprintln(e.stderr, "stamp:", err)
	return ExitFailure
}

// flagSet builds a subcommand flag set that reports usage errors on
// e.stderr without exiting the process.
func (e env) flagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(e.stderr)
	return fs
}

// parse runs fs.Parse and maps the outcome onto the exit-code contract:
// explicitly requested help (-h/--help) is success, a malformed flag is
// a usage error. done is false when parsing succeeded and the
// subcommand should proceed.
func parse(fs *flag.FlagSet, args []string) (code int, done bool) {
	switch err := fs.Parse(args); {
	case err == nil:
		return ExitOK, false
	case errors.Is(err, flag.ErrHelp):
		return ExitOK, true
	default:
		return ExitUsage, true
	}
}

// emit renders one lab result — the JSON envelope or its text form —
// and maps divergences onto the exit code.
func (e env) emit(res *lab.Result, jsonOut bool) int {
	if jsonOut {
		enc := json.NewEncoder(e.stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return e.fail(err)
		}
	} else {
		res.Print(e.stdout)
	}
	if res.Divergences > 0 {
		fmt.Fprintf(e.stderr, "stamp: %d sim-vs-live divergences\n", res.Divergences)
		return ExitFailure
	}
	return ExitOK
}

// progressFn returns a shard-progress reporter on stderr, or nil.
func (e env) progressFn(enabled bool) func(done, total int) {
	if !enabled {
		return nil
	}
	return func(done, total int) {
		fmt.Fprintf(e.stderr, "\r%d/%d shards", done, total)
		if done == total {
			fmt.Fprintln(e.stderr)
		}
	}
}

// parseSeeds parses a comma-separated seed list.
func parseSeeds(s string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad topo seed %q: %w", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no topology seeds given")
	}
	return out, nil
}

// splitCSV parses a comma-separated name list ("" and "all" = nil).
func splitCSV(s string) []string {
	if s == "" || s == "all" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
