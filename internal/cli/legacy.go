package cli

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"stamp/internal/lab"
)

// Legacy shims: the pre-stamp binaries (stampsim, stamplab, stampflood,
// topogen, stampd) forward here for one deprecation release. Each maps
// its old flag surface onto the unified subcommand and prints a pointer
// to the replacement on stderr.

// deprecated notes the replacement command once per invocation.
func deprecated(stderr io.Writer, old, new string) {
	fmt.Fprintf(stderr, "%s is deprecated; use `%s` (flags compatible, exit codes and defaults unified — see the README migration table)\n", old, new)
}

// LegacyLab is the old stamplab entry point.
func LegacyLab(ctx context.Context, argv []string, stdout, stderr io.Writer) int {
	deprecated(stderr, "stamplab", "stamp lab")
	return Main(ctx, append([]string{"lab"}, argv...), stdout, stderr)
}

// LegacyFlood is the old stampflood entry point. stampflood defaulted
// to 8 trials where the unified CLI defaults to 10; the injected
// -trials keeps legacy invocations byte-compatible (an explicit user
// -trials later in argv wins — the flag package takes the last value).
func LegacyFlood(ctx context.Context, argv []string, stdout, stderr io.Writer) int {
	deprecated(stderr, "stampflood", "stamp flood")
	return Main(ctx, append([]string{"flood", "-trials", "8"}, argv...), stdout, stderr)
}

// LegacyTopogen is the old topogen entry point.
func LegacyTopogen(ctx context.Context, argv []string, stdout, stderr io.Writer) int {
	deprecated(stderr, "topogen", "stamp topo")
	return Main(ctx, append([]string{"topo"}, argv...), stdout, stderr)
}

// LegacyAsrel is the old asrel entry point.
func LegacyAsrel(ctx context.Context, argv []string, stdout, stderr io.Writer) int {
	deprecated(stderr, "asrel", "stamp asrel")
	return Main(ctx, append([]string{"asrel"}, argv...), stdout, stderr)
}

// LegacyDaemon is the old stampd entry point.
func LegacyDaemon(ctx context.Context, argv []string, stdout, stderr io.Writer) int {
	deprecated(stderr, "stampd", "stamp daemon")
	return Main(ctx, append([]string{"daemon"}, argv...), stdout, stderr)
}

// legacySimAll is the experiment sequence `stampsim -exp all` ran.
var legacySimAll = []string{
	"figure1", "figure1-intelligent", "figure2", "figure3a",
	"figure3b", "partial", "overhead", "convergence",
	"ablation/lock", "ablation/mrai",
}

// legacySimNames maps old stampsim -exp spellings onto registry names.
var legacySimNames = map[string]string{
	"ablation-lock": "ablation/lock",
	"ablation-mrai": "ablation/mrai",
}

// LegacySim is the old stampsim entry point: the -exp flag surface
// mapped onto the lab registry. JSON mode emits an array of result
// envelopes (the old format was an array too; the element shape is now
// the versioned lab.Result).
func LegacySim(ctx context.Context, argv []string, stdout, stderr io.Writer) int {
	deprecated(stderr, "stampsim", "stamp run <experiment>")
	e := env{ctx: ctx, stdout: stdout, stderr: stderr}
	fs := e.flagSet("stampsim")
	exp := fs.String("exp", "all", "experiment to run")
	f := addRequestFlags(fs)
	if code, done := parse(fs, argv); done {
		return code
	}

	names := []string{*exp}
	if *exp == "all" {
		names = legacySimAll
	}
	var results []*lab.Result
	divergences := 0
	for _, name := range names {
		if mapped, ok := legacySimNames[name]; ok {
			name = mapped
		}
		if _, ok := lab.Get(name); !ok {
			fmt.Fprintf(stderr, "stampsim: unknown experiment %q\n", name)
			return ExitUsage
		}
		req, err := f.request(e, name)
		if err != nil {
			fmt.Fprintln(stderr, "stampsim:", err)
			return ExitUsage
		}
		res, err := lab.Run(req)
		if err != nil {
			// Emit whatever completed before failing, so long multi-
			// experiment runs don't lose finished results.
			if *f.jsonOut && len(results) > 0 {
				emitJSONArray(e, results)
			}
			return e.fail(err)
		}
		divergences += res.Divergences
		if *f.jsonOut {
			results = append(results, res)
		} else {
			res.Print(stdout)
			fmt.Fprintln(stdout)
		}
	}
	if *f.jsonOut {
		if code := emitJSONArray(e, results); code != ExitOK {
			return code
		}
	}
	// Same contract as every stamp subcommand: a sim-vs-live divergence
	// is a failure even when the run itself completed.
	if divergences > 0 {
		fmt.Fprintf(stderr, "stampsim: %d sim-vs-live divergences\n", divergences)
		return ExitFailure
	}
	return ExitOK
}

func emitJSONArray(e env, results []*lab.Result) int {
	enc := json.NewEncoder(e.stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		return e.fail(err)
	}
	return ExitOK
}
