package cli

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/netip"
	"strconv"
	"strings"
	"time"

	"stamp/internal/netd"
	"stamp/internal/obs"
	"stamp/internal/serve"
	"stamp/internal/topology"
	"stamp/internal/wire"
)

// cmdDaemon is `stamp daemon`: one live STAMP routing process (one
// color) speaking the wire protocol over TCP. A full STAMP router runs
// two daemons, red and blue, on distinct ports — exactly the paper's
// deployment story.
//
// Peers are addr,AS,rel triples where rel is one of customer, peer,
// provider (the remote's role from our perspective).
func (e env) cmdDaemon(args []string) int {
	fs := e.flagSet("stamp daemon")
	var (
		asn       = fs.Uint("as", 0, "local AS number (required)")
		id        = fs.Uint("id", 1, "router ID")
		color     = fs.String("color", "red", "process color: red or blue")
		listen    = fs.String("listen", "", "listen address (optional)")
		originate = fs.String("originate", "", "prefix to originate (optional)")
		lock      = fs.Uint("lock", 0, "provider AS receiving the locked blue announcement")
		accept    = fs.String("accept", "", "inbound peers: AS,rel pairs separated by ';'")
		metrics   = fs.String("metrics", "", "serve /metrics, /healthz, and /events on this address (optional)")
		pprofOn   = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the -metrics listener")
	)
	var peers []peerFlag
	fs.Func("peer", "outbound peer as addr,AS,rel (repeatable)", func(v string) error {
		p, err := parsePeer(v)
		if err != nil {
			return err
		}
		peers = append(peers, p)
		return nil
	})
	if code, done := parse(fs, args); done {
		return code
	}

	if *asn == 0 || *asn > 65535 {
		fmt.Fprintln(e.stderr, "stamp daemon: -as is required (1..65535)")
		return ExitUsage
	}
	var colorByte byte
	switch *color {
	case "red":
		colorByte = 0
	case "blue":
		colorByte = 1
	default:
		fmt.Fprintln(e.stderr, "stamp daemon: -color must be red or blue")
		return ExitUsage
	}

	logger := log.New(e.stderr, "", log.LstdFlags)
	reg := obs.NewRegistry()
	obs.RegisterRuntime(reg)
	wireMetrics := netd.NewMetrics(reg)
	events := obs.NewEventLog(1024)
	routeChanges := reg.Counter("stamp_daemon_route_changes_total",
		"Best-route changes (including losses) observed by this daemon.")
	sp := netd.NewSpeaker(netd.SpeakerConfig{
		AS:       uint16(*asn),
		RouterID: uint32(*id),
		Color:    colorByte,
		Logf:     logger.Printf,
		Metrics:  wireMetrics,
	})
	// Route changes flow through the structured event log (streamed on
	// /events when -metrics is set); the stderr line renders the same
	// record so a bare daemon stays observable.
	sp.OnChange = func(p wire.Prefix, best *wire.Attrs) {
		routeChanges.Inc()
		rec := daemonRouteChange{Prefix: p.String(), Lost: best == nil}
		if best != nil {
			for _, as := range best.ASPath {
				rec.Path = append(rec.Path, int(as))
			}
			rec.Lock = best.Lock
		}
		data, _ := json.Marshal(rec)
		detail := "route to " + rec.Prefix + " lost"
		if best != nil {
			detail = fmt.Sprintf("best route to %v: path %v lock=%v", p, best.ASPath, best.Lock)
		}
		events.Append("route-change", detail, data)
		logger.Print(detail)
	}

	if *listen != "" {
		expect, err := parseAccept(*accept)
		if err != nil {
			fmt.Fprintln(e.stderr, "stamp daemon:", err)
			return ExitUsage
		}
		addr, err := sp.Listen(*listen, expect)
		if err != nil {
			return e.fail(err)
		}
		logger.Printf("listening on %v", addr)
	}
	for _, p := range peers {
		if err := sp.Dial(p.addr, p.as, p.rel); err != nil {
			return e.fail(err)
		}
		logger.Printf("dialing %s (AS%d, %v)", p.addr, p.as, p.rel)
	}
	if *originate != "" {
		p, err := netip.ParsePrefix(*originate)
		if err != nil {
			fmt.Fprintln(e.stderr, "stamp daemon: bad -originate prefix:", err)
			return ExitUsage
		}
		pfx := wire.Prefix{Addr: p.Addr(), Bits: p.Bits()}
		sp.Originate(pfx, uint16(*lock))
		logger.Printf("originating %v (lock provider AS%d)", pfx, *lock)
	}

	// The observability listener shares the serve layer's mux: the same
	// /metrics, /healthz, and /events surface, scraped the same way.
	var stopMetrics func()
	if *metrics != "" {
		closing := make(chan struct{})
		mux := serve.ObsMux(serve.MuxConfig{
			Registry: reg,
			Events:   events,
			Health: func() any {
				return map[string]any{
					"status": "ok", "as": *asn, "color": *color,
					"sessions_up":   wireMetrics.SessionsUp.Value(),
					"route_changes": routeChanges.Value(),
				}
			},
			Closing: closing,
			Pprof:   *pprofOn,
		})
		srv, addr, err := serveMux(mux, *metrics)
		if err != nil {
			return e.fail(err)
		}
		logger.Printf("metrics on http://%s/metrics", addr)
		stopMetrics = func() {
			close(closing)
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}
	}

	// Run until the process context (Ctrl-C / SIGTERM in cmd/stamp) is
	// canceled, then close every session cleanly.
	<-e.ctx.Done()
	if stopMetrics != nil {
		stopMetrics()
	}
	sp.Close()
	return ExitOK
}

// serveMux binds addr and serves the mux in the background, returning
// the server handle and the bound address.
func serveMux(mux http.Handler, addr string) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("metrics listener: %w", err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}

// daemonRouteChange is the structured payload of a route-change event.
type daemonRouteChange struct {
	Prefix string `json:"prefix"`
	Lost   bool   `json:"lost,omitempty"`
	Path   []int  `json:"path,omitempty"`
	Lock   bool   `json:"lock,omitempty"`
}

type peerFlag struct {
	addr string
	as   uint16
	rel  topology.Rel
}

func parsePeer(v string) (peerFlag, error) {
	parts := strings.Split(v, ",")
	if len(parts) != 3 {
		return peerFlag{}, fmt.Errorf("want addr,AS,rel, got %q", v)
	}
	as, err := strconv.ParseUint(parts[1], 10, 16)
	if err != nil {
		return peerFlag{}, fmt.Errorf("bad AS %q", parts[1])
	}
	rel, err := parseRel(parts[2])
	if err != nil {
		return peerFlag{}, err
	}
	return peerFlag{addr: parts[0], as: uint16(as), rel: rel}, nil
}

func parseAccept(v string) (map[uint16]topology.Rel, error) {
	out := make(map[uint16]topology.Rel)
	if v == "" {
		return out, nil
	}
	for _, item := range strings.Split(v, ";") {
		parts := strings.Split(item, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("accept: want AS,rel, got %q", item)
		}
		as, err := strconv.ParseUint(parts[0], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("accept: bad AS %q", parts[0])
		}
		rel, err := parseRel(parts[1])
		if err != nil {
			return nil, err
		}
		out[uint16(as)] = rel
	}
	return out, nil
}

func parseRel(s string) (topology.Rel, error) {
	switch s {
	case "customer":
		return topology.RelCustomer, nil
	case "peer":
		return topology.RelPeer, nil
	case "provider":
		return topology.RelProvider, nil
	}
	return topology.RelNone, fmt.Errorf("bad relationship %q (customer|peer|provider)", s)
}
