package cli

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"stamp/internal/lab"
	"stamp/internal/obs"
)

// run drives the full CLI in-process: argv to exit code, capturing both
// streams.
func run(t *testing.T, argv ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = Main(context.Background(), argv, &out, &errw)
	return code, out.String(), errw.String()
}

// TestExitCodes pins the operator contract: 0 success, 1 failure, 2
// usage — identical across subcommands.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		argv []string
		want int
	}{
		{"no args", nil, ExitUsage},
		{"unknown subcommand", []string{"frobnicate"}, ExitUsage},
		{"run without experiment", []string{"run"}, ExitUsage},
		{"run unknown experiment", []string{"run", "no-such-harness"}, ExitUsage},
		{"run bad flag", []string{"run", "transient", "-badflag"}, ExitUsage},
		{"run bad scenario", []string{"run", "transient", "-scenario", "meteor-strike", "-n", "50"}, ExitFailure},
		{"bad topo seeds", []string{"run", "sweep", "-topo-seeds", "x"}, ExitUsage},
		{"help", []string{"help"}, ExitOK},
		{"subcommand -h is success", []string{"run", "transient", "-h"}, ExitOK},
		{"run -h is success", []string{"run", "-h"}, ExitOK},
		{"topo -h is success", []string{"topo", "-h"}, ExitOK},
		{"daemon bad originate", []string{"daemon", "-as", "64512", "-originate", "not-a-prefix"}, ExitUsage},
		{"loss emu rejects non-stamp protocol", []string{"flood", "-backend", "emu", "-n", "40", "-protocol", "bgp"}, ExitFailure},
		{"list", []string{"list"}, ExitOK},
		{"run ok", []string{"run", "partial", "-n", "60"}, ExitOK},
		{"atlas bad scenario", []string{"atlas", "-n", "100", "-scenario", "meteor-strike"}, ExitFailure},
		{"atlas rejects prefix-withdraw", []string{"atlas", "-n", "100", "-scenario", "prefix-withdraw"}, ExitFailure},
		{"atlas -h is success", []string{"atlas", "-h"}, ExitOK},
		{"atlas -loss -replay conflict", []string{"atlas", "-loss", "-replay", "-n", "100"}, ExitUsage},
		{"atlas replay rejects withdraw", []string{"atlas", "-replay", "-n", "100", "-scenario", "prefix-withdraw"}, ExitFailure},
		{"atlas replay rejects unbalanced repeat", []string{"atlas", "-replay", "-n", "100", "-scenario", "node-failure", "-repeat", "2", "-dests", "2"}, ExitFailure},
		{"atlas -why requires -replay", []string{"atlas", "-why", "auto", "-n", "100"}, ExitUsage},
		{"atlas -why rejects bad spec", []string{"atlas", "-replay", "-why", "5", "-n", "100"}, ExitFailure},
		{"atlas -why rejects unsampled dest", []string{"atlas", "-replay", "-why", "999999:1", "-n", "100", "-dests", "2"}, ExitFailure},
		{"topo stats with snapshot flags", []string{"topo", "-in", "/no/such/file", "-tier1", "9"}, ExitUsage},
		{"flood bad backend", []string{"flood", "-backend", "quantum", "-n", "50"}, ExitFailure},
		{"topo ok", []string{"topo", "-n", "30"}, ExitOK},
		{"steer -h is success", []string{"steer", "-h"}, ExitOK},
		{"steer bad scenario", []string{"steer", "-n", "60", "-scenario", "meteor-strike"}, ExitFailure},
		{"steer bad protocol", []string{"steer", "-n", "60", "-protocol", "ospf"}, ExitFailure},
		{"serve -h is success", []string{"serve", "-h"}, ExitOK},
		{"serve bad flag", []string{"serve", "-badflag"}, ExitUsage},
		{"serve bad scenario", []string{"serve", "-scenario", "meteor-strike"}, ExitUsage},
		{"serve bad rate", []string{"serve", "-rate", "0"}, ExitUsage},
		{"serve bind failure", []string{"serve", "-n", "100", "-addr", "999.999.999.999:0", "-swarm", "1"}, ExitFailure},
		{"serve missing snapshot", []string{"serve", "-topo", "/no/such/file"}, ExitFailure},
		{"serve rejects unbalanced endless replay", []string{"serve", "-n", "100", "-replay", "-scenario", "node-failure"}, ExitFailure},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := run(t, tc.argv...)
			if code != tc.want {
				t.Errorf("argv %v: exit %d, want %d (stderr: %s)", tc.argv, code, tc.want, stderr)
			}
		})
	}
}

// TestDivergenceExitCode: a result carrying divergences exits 1 even
// though the run itself succeeded — parity failure is failure.
func TestDivergenceExitCode(t *testing.T) {
	var out, errw bytes.Buffer
	e := env{ctx: context.Background(), stdout: &out, stderr: &errw}
	if code := e.emit(&lab.Result{SchemaVersion: lab.SchemaVersion, Divergences: 2}, true); code != ExitFailure {
		t.Errorf("divergent result: exit %d, want %d", code, ExitFailure)
	}
	if !strings.Contains(errw.String(), "divergences") {
		t.Errorf("stderr %q does not mention divergences", errw.String())
	}
	if code := e.emit(&lab.Result{SchemaVersion: lab.SchemaVersion}, true); code != ExitOK {
		t.Errorf("clean result: exit %d, want %d", code, ExitOK)
	}
}

// TestRunJSONByteIdenticalAcrossWorkers: the acceptance criterion at
// the CLI layer — `stamp run <exp> -json` emits byte-identical output
// for any -workers value.
func TestRunJSONByteIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	var snaps []string
	for _, workers := range []string{"1", "4"} {
		code, stdout, stderr := run(t, "run", "figure2",
			"-n", "120", "-trials", "2", "-seed", "5", "-workers", workers, "-json")
		if code != ExitOK {
			t.Fatalf("workers=%s: exit %d (stderr: %s)", workers, code, stderr)
		}
		snaps = append(snaps, stdout)
	}
	if snaps[0] != snaps[1] {
		t.Errorf("stamp run -json differs between -workers 1 and 4:\n%.300s\n%.300s", snaps[0], snaps[1])
	}
	// The output is the versioned envelope.
	var env struct {
		SchemaVersion int    `json:"schema_version"`
		Experiment    string `json:"experiment"`
	}
	if err := json.Unmarshal([]byte(snaps[0]), &env); err != nil {
		t.Fatal(err)
	}
	if env.SchemaVersion != lab.SchemaVersion || env.Experiment != "figure2" {
		t.Errorf("envelope = %+v", env)
	}
}

// TestListCoversRegistry: `stamp list` prints every registered
// experiment.
func TestListCoversRegistry(t *testing.T) {
	code, stdout, _ := run(t, "list")
	if code != ExitOK {
		t.Fatalf("list exit %d", code)
	}
	for _, name := range lab.Names() {
		if !strings.Contains(stdout, name) {
			t.Errorf("stamp list output missing %q", name)
		}
	}
}

// syncBuf is a goroutine-safe writer for capturing a live subcommand's
// stderr while it runs.
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestDaemonMetricsEndpoint: `stamp daemon -metrics` exposes the shared
// observability mux — wire-level Prometheus metrics and /healthz —
// while the daemon runs, and SIGINT (context cancel) still exits 0.
func TestDaemonMetricsEndpoint(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out bytes.Buffer
	errw := &syncBuf{}
	done := make(chan int, 1)
	go func() {
		done <- Main(ctx, []string{"daemon", "-as", "64512",
			"-listen", "127.0.0.1:0", "-metrics", "127.0.0.1:0"}, &out, errw)
	}()

	// The daemon logs the bound metrics address; poll for it.
	re := regexp.MustCompile(`metrics on (http://[^/\s]+)/metrics`)
	var base string
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if m := re.FindStringSubmatch(errw.String()); m != nil {
			base = m[1]
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if base == "" {
		cancel()
		t.Fatalf("metrics address never logged:\n%s", errw.String())
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := obs.ParseText(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"stamp_netd_sessions_up", "stamp_daemon_route_changes_total"} {
		if _, ok := sc.Types[want]; !ok {
			t.Errorf("scrape missing %s", want)
		}
	}
	var health struct {
		Status string `json:"status"`
		AS     int    `json:"as"`
	}
	hr, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if health.Status != "ok" || health.AS != 64512 {
		t.Errorf("health = %+v", health)
	}

	cancel()
	select {
	case code := <-done:
		if code != ExitOK {
			t.Errorf("daemon exit %d, want %d", code, ExitOK)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit on context cancel")
	}
}

// TestAtlasCLI: `stamp atlas` runs the flat-engine experiment end to
// end, and `stamp topo -stats -in` summarizes an ingested snapshot —
// the zero-to-atlas operator path.
func TestAtlasCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	dir := t.TempDir()
	snapshot := dir + "/topo.asrel"
	if code, _, stderr := run(t, "topo", "-n", "150", "-seed", "2", "-o", snapshot); code != ExitOK {
		t.Fatalf("topo exit %d (stderr: %s)", code, stderr)
	}
	code, _, stderr := run(t, "topo", "-in", snapshot, "-stats")
	if code != ExitOK {
		t.Fatalf("topo -stats exit %d (stderr: %s)", code, stderr)
	}
	for _, want := range []string{"degree", "tier-1", "customer-provider"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("topo -stats output missing %q:\n%s", want, stderr)
		}
	}
	code, stdout, stderr := run(t, "atlas", "-topo", snapshot, "-dests", "4", "-seed", "3", "-json")
	if code != ExitOK {
		t.Fatalf("atlas exit %d (stderr: %s)", code, stderr)
	}
	var env struct {
		Experiment string `json:"experiment"`
		Topology   struct {
			Loaded bool `json:"loaded"`
		} `json:"topology"`
	}
	if err := json.Unmarshal([]byte(stdout), &env); err != nil {
		t.Fatal(err)
	}
	if env.Experiment != "atlas-converge" || !env.Topology.Loaded {
		t.Errorf("envelope = %+v, want atlas-converge on a loaded snapshot", env)
	}
	if code, _, stderr := run(t, "atlas", "-loss", "-topo", snapshot, "-dests", "2", "-seed", "3"); code != ExitOK {
		t.Fatalf("atlas -loss exit %d (stderr: %s)", code, stderr)
	}
}

// TestTopoReemitKeepsOriginalASNs: round-tripping a snapshot through
// `stamp topo -in ... -o ...` must keep the snapshot's ASNs, not
// replace them with the loader's dense renumbering.
func TestTopoReemitKeepsOriginalASNs(t *testing.T) {
	dir := t.TempDir()
	src := dir + "/real.asrel"
	if err := os.WriteFile(src, []byte("174|3356|0\n174|64512|-1\n3356|64512|-1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := dir + "/copy.asrel"
	if code, _, stderr := run(t, "topo", "-in", src, "-o", out); code != ExitOK {
		t.Fatalf("topo -in -o exit %d (stderr: %s)", code, stderr)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, asn := range []string{"174", "3356", "64512"} {
		if !strings.Contains(string(raw), asn) {
			t.Errorf("re-emitted snapshot lost original ASN %s:\n%s", asn, raw)
		}
	}
}

// TestAtlasJSONByteIdenticalAcrossWorkers: the acceptance criterion at
// the CLI layer for the destination-sharded subsystem.
func TestAtlasJSONByteIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	var snaps []string
	for _, workers := range []string{"1", "4"} {
		code, stdout, stderr := run(t, "run", "atlas-converge",
			"-n", "200", "-dests", "6", "-seed", "5", "-scenario", "flap-storm", "-workers", workers, "-json")
		if code != ExitOK {
			t.Fatalf("workers=%s: exit %d (stderr: %s)", workers, code, stderr)
		}
		snaps = append(snaps, stdout)
	}
	if snaps[0] != snaps[1] {
		t.Errorf("stamp run atlas-converge -json differs between -workers 1 and 4:\n%.300s\n%.300s", snaps[0], snaps[1])
	}
}

// TestServeSwarmCLI: `stamp serve -replay -swarm` boots the service
// mode end to end — converge, replay, swarm load, SLO gate — and emits
// the swarm report JSON.
func TestServeSwarmCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("live service load run")
	}
	code, stdout, stderr := run(t, "serve",
		"-n", "300", "-dests", "4", "-seed", "3", "-addr", "127.0.0.1:0",
		"-replay", "-rate", "40", "-swarm", "4", "-duration", "1s", "-json")
	if code != ExitOK {
		t.Fatalf("serve exit %d (stderr: %s)", code, stderr)
	}
	var rep struct {
		Readers           int     `json:"readers"`
		Requests          int64   `json:"requests"`
		ReadP99Ms         float64 `json:"read_p99_ms"`
		CountersMonotonic bool    `json:"counters_monotonic"`
		EpochEnd          uint64  `json:"epoch_end"`
	}
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("swarm report: %v\n%s", err, stdout)
	}
	if rep.Readers != 4 || rep.Requests == 0 || !rep.CountersMonotonic || rep.EpochEnd == 0 {
		t.Errorf("report = %+v, want a live loaded run with monotonic counters", rep)
	}
	// An absurdly tight SLO must trip the gate.
	code, _, stderr = run(t, "serve",
		"-n", "300", "-dests", "2", "-seed", "3", "-addr", "127.0.0.1:0",
		"-replay", "-swarm", "2", "-duration", "500ms", "-slo", "0.000001")
	if code != ExitFailure {
		t.Errorf("impossible SLO: exit %d (stderr: %s), want %d", code, stderr, ExitFailure)
	}
}

// TestSteerCLI: `stamp steer` runs the four-arm latency steering grid
// end to end — the brownout preset, the -loss gray-failure preset, and
// the policy tuning flags reaching the experiment request.
func TestSteerCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	code, stdout, stderr := run(t, "steer",
		"-n", "80", "-trials", "2", "-seed", "5", "-ticks", "120", "-json")
	if code != ExitOK {
		t.Fatalf("steer exit %d (stderr: %s)", code, stderr)
	}
	var env struct {
		Experiment string `json:"experiment"`
		Scenario   string `json:"scenario"`
		Data       struct {
			Arms []struct {
				Protocol string `json:"protocol"`
			} `json:"arms"`
			Ratio float64 `json:"steer_vs_locked_latency_ratio"`
		} `json:"data"`
	}
	if err := json.Unmarshal([]byte(stdout), &env); err != nil {
		t.Fatal(err)
	}
	if env.Experiment != "steer-latency" || env.Scenario != "latency-brownout" || len(env.Data.Arms) != 4 {
		t.Errorf("envelope = %+v, want the four-arm steer-latency grid on latency-brownout", env)
	}
	if env.Data.Ratio <= 0 {
		t.Errorf("steer_vs_locked_latency_ratio = %v, want > 0", env.Data.Ratio)
	}
	// -loss swaps the preset; the tuning flags reach the policy config.
	code, stdout, stderr = run(t, "steer", "-loss",
		"-n", "80", "-trials", "1", "-seed", "5", "-ticks", "80",
		"-protocol", "stamp,stamp-steer", "-steer-n", "2", "-steer-cooldown", "15", "-json")
	if code != ExitOK {
		t.Fatalf("steer -loss exit %d (stderr: %s)", code, stderr)
	}
	var loss struct {
		Experiment string `json:"experiment"`
		Data       struct {
			Config struct {
				Consecutive   int `json:"consecutive"`
				CooldownTicks int `json:"cooldown_ticks"`
			} `json:"steer_config"`
		} `json:"data"`
	}
	if err := json.Unmarshal([]byte(stdout), &loss); err != nil {
		t.Fatal(err)
	}
	if loss.Experiment != "steer-loss" || loss.Data.Config.Consecutive != 2 || loss.Data.Config.CooldownTicks != 15 {
		t.Errorf("steer -loss envelope = %+v, want steer-loss with consecutive=2 cooldown=15", loss)
	}
}

// TestAtlasReplayCLI: `stamp atlas -replay -why` streams the script
// through the incremental engine end to end, and its JSON — including
// the provenance chain — is byte-identical for any -workers value: the
// CLI-level determinism gate for the replay and provenance paths.
func TestAtlasReplayCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	var snaps []string
	for _, workers := range []string{"1", "8"} {
		code, stdout, stderr := run(t, "atlas", "-replay",
			"-n", "200", "-dests", "6", "-seed", "5", "-repeat", "2", "-why", "auto", "-workers", workers, "-json")
		if code != ExitOK {
			t.Fatalf("workers=%s: exit %d (stderr: %s)", workers, code, stderr)
		}
		snaps = append(snaps, stdout)
	}
	if snaps[0] != snaps[1] {
		t.Errorf("stamp atlas -replay -json differs between -workers 1 and 8:\n%.300s\n%.300s", snaps[0], snaps[1])
	}
	var env struct {
		Experiment string `json:"experiment"`
		Data       struct {
			TotalEvents int `json:"total_events"`
			Repeat      int `json:"repeat"`
			PerEvent    []struct {
				Rounds int64 `json:"rounds"`
			} `json:"per_event"`
			Why *struct {
				Appends uint64 `json:"journal_appends"`
				Chains  []struct {
					Plane string `json:"plane"`
				} `json:"chains"`
			} `json:"why"`
		} `json:"data"`
	}
	if err := json.Unmarshal([]byte(snaps[0]), &env); err != nil {
		t.Fatal(err)
	}
	if env.Experiment != "atlas-replay" || env.Data.Repeat != 2 ||
		len(env.Data.PerEvent) != env.Data.TotalEvents || env.Data.TotalEvents == 0 {
		t.Errorf("envelope = %+v, want an atlas-replay per-event stream", env)
	}
	if env.Data.Why == nil || env.Data.Why.Appends == 0 || len(env.Data.Why.Chains) != 3 {
		t.Errorf("why payload = %+v, want three-plane chains with journal appends", env.Data.Why)
	}
}
