package cli

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"stamp/internal/lab"
)

// run drives the full CLI in-process: argv to exit code, capturing both
// streams.
func run(t *testing.T, argv ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = Main(context.Background(), argv, &out, &errw)
	return code, out.String(), errw.String()
}

// TestExitCodes pins the operator contract: 0 success, 1 failure, 2
// usage — identical across subcommands.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		argv []string
		want int
	}{
		{"no args", nil, ExitUsage},
		{"unknown subcommand", []string{"frobnicate"}, ExitUsage},
		{"run without experiment", []string{"run"}, ExitUsage},
		{"run unknown experiment", []string{"run", "no-such-harness"}, ExitUsage},
		{"run bad flag", []string{"run", "transient", "-badflag"}, ExitUsage},
		{"run bad scenario", []string{"run", "transient", "-scenario", "meteor-strike", "-n", "50"}, ExitFailure},
		{"bad topo seeds", []string{"run", "sweep", "-topo-seeds", "x"}, ExitUsage},
		{"help", []string{"help"}, ExitOK},
		{"subcommand -h is success", []string{"run", "transient", "-h"}, ExitOK},
		{"run -h is success", []string{"run", "-h"}, ExitOK},
		{"topo -h is success", []string{"topo", "-h"}, ExitOK},
		{"daemon bad originate", []string{"daemon", "-as", "64512", "-originate", "not-a-prefix"}, ExitUsage},
		{"loss emu rejects non-stamp protocol", []string{"flood", "-backend", "emu", "-n", "40", "-protocol", "bgp"}, ExitFailure},
		{"list", []string{"list"}, ExitOK},
		{"run ok", []string{"run", "partial", "-n", "60"}, ExitOK},
		{"flood bad backend", []string{"flood", "-backend", "quantum", "-n", "50"}, ExitFailure},
		{"topo ok", []string{"topo", "-n", "30"}, ExitOK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := run(t, tc.argv...)
			if code != tc.want {
				t.Errorf("argv %v: exit %d, want %d (stderr: %s)", tc.argv, code, tc.want, stderr)
			}
		})
	}
}

// TestDivergenceExitCode: a result carrying divergences exits 1 even
// though the run itself succeeded — parity failure is failure.
func TestDivergenceExitCode(t *testing.T) {
	var out, errw bytes.Buffer
	e := env{ctx: context.Background(), stdout: &out, stderr: &errw}
	if code := e.emit(&lab.Result{SchemaVersion: lab.SchemaVersion, Divergences: 2}, true); code != ExitFailure {
		t.Errorf("divergent result: exit %d, want %d", code, ExitFailure)
	}
	if !strings.Contains(errw.String(), "divergences") {
		t.Errorf("stderr %q does not mention divergences", errw.String())
	}
	if code := e.emit(&lab.Result{SchemaVersion: lab.SchemaVersion}, true); code != ExitOK {
		t.Errorf("clean result: exit %d, want %d", code, ExitOK)
	}
}

// TestRunJSONByteIdenticalAcrossWorkers: the acceptance criterion at
// the CLI layer — `stamp run <exp> -json` emits byte-identical output
// for any -workers value.
func TestRunJSONByteIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	var snaps []string
	for _, workers := range []string{"1", "4"} {
		code, stdout, stderr := run(t, "run", "figure2",
			"-n", "120", "-trials", "2", "-seed", "5", "-workers", workers, "-json")
		if code != ExitOK {
			t.Fatalf("workers=%s: exit %d (stderr: %s)", workers, code, stderr)
		}
		snaps = append(snaps, stdout)
	}
	if snaps[0] != snaps[1] {
		t.Errorf("stamp run -json differs between -workers 1 and 4:\n%.300s\n%.300s", snaps[0], snaps[1])
	}
	// The output is the versioned envelope.
	var env struct {
		SchemaVersion int    `json:"schema_version"`
		Experiment    string `json:"experiment"`
	}
	if err := json.Unmarshal([]byte(snaps[0]), &env); err != nil {
		t.Fatal(err)
	}
	if env.SchemaVersion != lab.SchemaVersion || env.Experiment != "figure2" {
		t.Errorf("envelope = %+v", env)
	}
}

// TestListCoversRegistry: `stamp list` prints every registered
// experiment.
func TestListCoversRegistry(t *testing.T) {
	code, stdout, _ := run(t, "list")
	if code != ExitOK {
		t.Fatalf("list exit %d", code)
	}
	for _, name := range lab.Names() {
		if !strings.Contains(stdout, name) {
			t.Errorf("stamp list output missing %q", name)
		}
	}
}

// TestLegacyShims: the deprecated binaries' entry points still work and
// point at their replacements.
func TestLegacyShims(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	var out, errw bytes.Buffer
	if code := LegacySim(context.Background(), []string{"-exp", "partial", "-n", "60", "-json"}, &out, &errw); code != ExitOK {
		t.Fatalf("LegacySim exit %d (stderr: %s)", code, errw.String())
	}
	if !strings.Contains(errw.String(), "deprecated") {
		t.Errorf("no deprecation notice: %s", errw.String())
	}
	var results []json.RawMessage
	if err := json.Unmarshal(out.Bytes(), &results); err != nil || len(results) != 1 {
		t.Errorf("legacy JSON is not a one-element array: %v (%.200s)", err, out.String())
	}
	out.Reset()
	errw.Reset()
	if code := LegacyTopogen(context.Background(), []string{"-n", "30"}, &out, &errw); code != ExitOK {
		t.Fatalf("LegacyTopogen exit %d", code)
	}
	// Old stampsim spellings for the ablations map onto the registry's
	// slash names.
	out.Reset()
	errw.Reset()
	if code := LegacySim(context.Background(), []string{"-exp", "ablation-lock", "-n", "60"}, &out, &errw); code != ExitOK {
		t.Fatalf("LegacySim ablation-lock exit %d (stderr: %s)", code, errw.String())
	}
}
