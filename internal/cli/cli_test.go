package cli

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"stamp/internal/lab"
)

// run drives the full CLI in-process: argv to exit code, capturing both
// streams.
func run(t *testing.T, argv ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = Main(context.Background(), argv, &out, &errw)
	return code, out.String(), errw.String()
}

// TestExitCodes pins the operator contract: 0 success, 1 failure, 2
// usage — identical across subcommands.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		argv []string
		want int
	}{
		{"no args", nil, ExitUsage},
		{"unknown subcommand", []string{"frobnicate"}, ExitUsage},
		{"run without experiment", []string{"run"}, ExitUsage},
		{"run unknown experiment", []string{"run", "no-such-harness"}, ExitUsage},
		{"run bad flag", []string{"run", "transient", "-badflag"}, ExitUsage},
		{"run bad scenario", []string{"run", "transient", "-scenario", "meteor-strike", "-n", "50"}, ExitFailure},
		{"bad topo seeds", []string{"run", "sweep", "-topo-seeds", "x"}, ExitUsage},
		{"help", []string{"help"}, ExitOK},
		{"subcommand -h is success", []string{"run", "transient", "-h"}, ExitOK},
		{"run -h is success", []string{"run", "-h"}, ExitOK},
		{"topo -h is success", []string{"topo", "-h"}, ExitOK},
		{"daemon bad originate", []string{"daemon", "-as", "64512", "-originate", "not-a-prefix"}, ExitUsage},
		{"loss emu rejects non-stamp protocol", []string{"flood", "-backend", "emu", "-n", "40", "-protocol", "bgp"}, ExitFailure},
		{"list", []string{"list"}, ExitOK},
		{"run ok", []string{"run", "partial", "-n", "60"}, ExitOK},
		{"atlas bad scenario", []string{"atlas", "-n", "100", "-scenario", "meteor-strike"}, ExitFailure},
		{"atlas rejects prefix-withdraw", []string{"atlas", "-n", "100", "-scenario", "prefix-withdraw"}, ExitFailure},
		{"atlas -h is success", []string{"atlas", "-h"}, ExitOK},
		{"atlas -loss -replay conflict", []string{"atlas", "-loss", "-replay", "-n", "100"}, ExitUsage},
		{"atlas replay rejects withdraw", []string{"atlas", "-replay", "-n", "100", "-scenario", "prefix-withdraw"}, ExitFailure},
		{"atlas replay rejects unbalanced repeat", []string{"atlas", "-replay", "-n", "100", "-scenario", "node-failure", "-repeat", "2", "-dests", "2"}, ExitFailure},
		{"topo stats with snapshot flags", []string{"topo", "-in", "/no/such/file", "-tier1", "9"}, ExitUsage},
		{"flood bad backend", []string{"flood", "-backend", "quantum", "-n", "50"}, ExitFailure},
		{"topo ok", []string{"topo", "-n", "30"}, ExitOK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := run(t, tc.argv...)
			if code != tc.want {
				t.Errorf("argv %v: exit %d, want %d (stderr: %s)", tc.argv, code, tc.want, stderr)
			}
		})
	}
}

// TestDivergenceExitCode: a result carrying divergences exits 1 even
// though the run itself succeeded — parity failure is failure.
func TestDivergenceExitCode(t *testing.T) {
	var out, errw bytes.Buffer
	e := env{ctx: context.Background(), stdout: &out, stderr: &errw}
	if code := e.emit(&lab.Result{SchemaVersion: lab.SchemaVersion, Divergences: 2}, true); code != ExitFailure {
		t.Errorf("divergent result: exit %d, want %d", code, ExitFailure)
	}
	if !strings.Contains(errw.String(), "divergences") {
		t.Errorf("stderr %q does not mention divergences", errw.String())
	}
	if code := e.emit(&lab.Result{SchemaVersion: lab.SchemaVersion}, true); code != ExitOK {
		t.Errorf("clean result: exit %d, want %d", code, ExitOK)
	}
}

// TestRunJSONByteIdenticalAcrossWorkers: the acceptance criterion at
// the CLI layer — `stamp run <exp> -json` emits byte-identical output
// for any -workers value.
func TestRunJSONByteIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	var snaps []string
	for _, workers := range []string{"1", "4"} {
		code, stdout, stderr := run(t, "run", "figure2",
			"-n", "120", "-trials", "2", "-seed", "5", "-workers", workers, "-json")
		if code != ExitOK {
			t.Fatalf("workers=%s: exit %d (stderr: %s)", workers, code, stderr)
		}
		snaps = append(snaps, stdout)
	}
	if snaps[0] != snaps[1] {
		t.Errorf("stamp run -json differs between -workers 1 and 4:\n%.300s\n%.300s", snaps[0], snaps[1])
	}
	// The output is the versioned envelope.
	var env struct {
		SchemaVersion int    `json:"schema_version"`
		Experiment    string `json:"experiment"`
	}
	if err := json.Unmarshal([]byte(snaps[0]), &env); err != nil {
		t.Fatal(err)
	}
	if env.SchemaVersion != lab.SchemaVersion || env.Experiment != "figure2" {
		t.Errorf("envelope = %+v", env)
	}
}

// TestListCoversRegistry: `stamp list` prints every registered
// experiment.
func TestListCoversRegistry(t *testing.T) {
	code, stdout, _ := run(t, "list")
	if code != ExitOK {
		t.Fatalf("list exit %d", code)
	}
	for _, name := range lab.Names() {
		if !strings.Contains(stdout, name) {
			t.Errorf("stamp list output missing %q", name)
		}
	}
}

// TestAtlasCLI: `stamp atlas` runs the flat-engine experiment end to
// end, and `stamp topo -stats -in` summarizes an ingested snapshot —
// the zero-to-atlas operator path.
func TestAtlasCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	dir := t.TempDir()
	snapshot := dir + "/topo.asrel"
	if code, _, stderr := run(t, "topo", "-n", "150", "-seed", "2", "-o", snapshot); code != ExitOK {
		t.Fatalf("topo exit %d (stderr: %s)", code, stderr)
	}
	code, _, stderr := run(t, "topo", "-in", snapshot, "-stats")
	if code != ExitOK {
		t.Fatalf("topo -stats exit %d (stderr: %s)", code, stderr)
	}
	for _, want := range []string{"degree", "tier-1", "customer-provider"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("topo -stats output missing %q:\n%s", want, stderr)
		}
	}
	code, stdout, stderr := run(t, "atlas", "-topo", snapshot, "-dests", "4", "-seed", "3", "-json")
	if code != ExitOK {
		t.Fatalf("atlas exit %d (stderr: %s)", code, stderr)
	}
	var env struct {
		Experiment string `json:"experiment"`
		Topology   struct {
			Loaded bool `json:"loaded"`
		} `json:"topology"`
	}
	if err := json.Unmarshal([]byte(stdout), &env); err != nil {
		t.Fatal(err)
	}
	if env.Experiment != "atlas-converge" || !env.Topology.Loaded {
		t.Errorf("envelope = %+v, want atlas-converge on a loaded snapshot", env)
	}
	if code, _, stderr := run(t, "atlas", "-loss", "-topo", snapshot, "-dests", "2", "-seed", "3"); code != ExitOK {
		t.Fatalf("atlas -loss exit %d (stderr: %s)", code, stderr)
	}
}

// TestTopoReemitKeepsOriginalASNs: round-tripping a snapshot through
// `stamp topo -in ... -o ...` must keep the snapshot's ASNs, not
// replace them with the loader's dense renumbering.
func TestTopoReemitKeepsOriginalASNs(t *testing.T) {
	dir := t.TempDir()
	src := dir + "/real.asrel"
	if err := os.WriteFile(src, []byte("174|3356|0\n174|64512|-1\n3356|64512|-1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := dir + "/copy.asrel"
	if code, _, stderr := run(t, "topo", "-in", src, "-o", out); code != ExitOK {
		t.Fatalf("topo -in -o exit %d (stderr: %s)", code, stderr)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, asn := range []string{"174", "3356", "64512"} {
		if !strings.Contains(string(raw), asn) {
			t.Errorf("re-emitted snapshot lost original ASN %s:\n%s", asn, raw)
		}
	}
}

// TestAtlasJSONByteIdenticalAcrossWorkers: the acceptance criterion at
// the CLI layer for the destination-sharded subsystem.
func TestAtlasJSONByteIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	var snaps []string
	for _, workers := range []string{"1", "4"} {
		code, stdout, stderr := run(t, "run", "atlas-converge",
			"-n", "200", "-dests", "6", "-seed", "5", "-scenario", "flap-storm", "-workers", workers, "-json")
		if code != ExitOK {
			t.Fatalf("workers=%s: exit %d (stderr: %s)", workers, code, stderr)
		}
		snaps = append(snaps, stdout)
	}
	if snaps[0] != snaps[1] {
		t.Errorf("stamp run atlas-converge -json differs between -workers 1 and 4:\n%.300s\n%.300s", snaps[0], snaps[1])
	}
}

// TestAtlasReplayCLI: `stamp atlas -replay` streams the script through
// the incremental engine end to end, and its JSON is byte-identical for
// any -workers value — the CLI-level determinism gate for the replay
// path.
func TestAtlasReplayCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	var snaps []string
	for _, workers := range []string{"1", "8"} {
		code, stdout, stderr := run(t, "atlas", "-replay",
			"-n", "200", "-dests", "6", "-seed", "5", "-repeat", "2", "-workers", workers, "-json")
		if code != ExitOK {
			t.Fatalf("workers=%s: exit %d (stderr: %s)", workers, code, stderr)
		}
		snaps = append(snaps, stdout)
	}
	if snaps[0] != snaps[1] {
		t.Errorf("stamp atlas -replay -json differs between -workers 1 and 8:\n%.300s\n%.300s", snaps[0], snaps[1])
	}
	var env struct {
		Experiment string `json:"experiment"`
		Data       struct {
			TotalEvents int `json:"total_events"`
			Repeat      int `json:"repeat"`
			PerEvent    []struct {
				Rounds int64 `json:"rounds"`
			} `json:"per_event"`
		} `json:"data"`
	}
	if err := json.Unmarshal([]byte(snaps[0]), &env); err != nil {
		t.Fatal(err)
	}
	if env.Experiment != "atlas-replay" || env.Data.Repeat != 2 ||
		len(env.Data.PerEvent) != env.Data.TotalEvents || env.Data.TotalEvents == 0 {
		t.Errorf("envelope = %+v, want an atlas-replay per-event stream", env)
	}
}
