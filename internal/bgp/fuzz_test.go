package bgp

import (
	"math/rand"
	"testing"

	"stamp/internal/sim"
	"stamp/internal/topology"
)

// TestSpeakerFuzz drives a speaker with random message sequences and
// checks its invariants after every step:
//
//   - the best route is Better-maximal over the Adj-RIB-In,
//   - no RIB entry contains the speaker's own AS,
//   - no RIB entry belongs to a down session,
//   - the speaker never panics.
func TestSpeakerFuzz(t *testing.T) {
	const self = topology.ASN(10)
	g := topology.NewGraph(11)
	for _, p := range []topology.ASN{0, 1, 2} {
		if err := g.AddProviderLink(self, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range []topology.ASN{3, 4} {
		if err := g.AddProviderLink(c, self); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddPeerLink(self, 5); err != nil {
		t.Fatal(err)
	}
	nbrs := []topology.ASN{0, 1, 2, 3, 4, 5}

	rng := rand.New(rand.NewSource(31))
	e := sim.NewEngine(sim.DefaultParams(), 1)
	sp := NewSpeaker(self, ColorRed, g, e, func(topology.ASN, Msg) {})

	randomPath := func() []topology.ASN {
		n := 1 + rng.Intn(5)
		p := make([]topology.ASN, n)
		for i := range p {
			p[i] = topology.ASN(rng.Intn(11))
		}
		return p
	}

	down := map[topology.ASN]bool{}
	for step := 0; step < 5000; step++ {
		nbr := nbrs[rng.Intn(len(nbrs))]
		switch rng.Intn(10) {
		case 0:
			sp.PeerDown(nbr)
			down[nbr] = true
		case 1:
			sp.PeerUp(nbr)
			down[nbr] = false
		case 2:
			sp.HandleMsg(nbr, Msg{Withdraw: true, Color: ColorRed, CausedByLoss: true})
		case 3:
			sp.Originate()
		case 4:
			sp.StopOriginating()
		default:
			path := randomPath()
			if path[0] != nbr {
				path[0] = nbr
			}
			sp.HandleMsg(nbr, Msg{
				Route:        &Route{Path: path, Color: ColorRed, Lock: rng.Intn(2) == 0},
				Color:        ColorRed,
				CausedByLoss: rng.Intn(2) == 0,
			})
		}

		// Invariants.
		best := sp.Best()
		sp.RibInAll(func(from topology.ASN, r *Route) {
			if r.ContainsAS(self) {
				t.Fatalf("step %d: looped route in RIB: %v", step, r)
			}
			if down[from] {
				t.Fatalf("step %d: RIB entry from down session %d", step, from)
			}
			if Better(r, best) {
				t.Fatalf("step %d: best %v is not maximal, %v is better", step, best, r)
			}
		})
	}
	// Drain MRAI/settle timers accumulated during the fuzz.
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestSpeakerFuzzDeliverySequence replays a random but *valid* update
// sequence (one route per neighbor, FIFO) and checks that the final state
// depends only on the final message per neighbor.
func TestSpeakerFuzzDeliverySequence(t *testing.T) {
	const self = topology.ASN(5)
	g := topology.NewGraph(6)
	for _, p := range []topology.ASN{0, 1, 2} {
		if err := g.AddProviderLink(self, p); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(37))

	type ev struct {
		nbr      topology.ASN
		withdraw bool
		path     []topology.ASN
	}
	var seq []ev
	finals := map[topology.ASN]*ev{}
	for i := 0; i < 200; i++ {
		nbr := topology.ASN(rng.Intn(3))
		e := ev{nbr: nbr, withdraw: rng.Intn(3) == 0}
		if !e.withdraw {
			e.path = []topology.ASN{nbr, topology.ASN(3 + rng.Intn(2))}
		}
		seq = append(seq, e)
		c := e
		finals[nbr] = &c
	}

	eng := sim.NewEngine(sim.DefaultParams(), 1)
	sp := NewSpeaker(self, ColorRed, g, eng, func(topology.ASN, Msg) {})
	for _, e := range seq {
		if e.withdraw {
			sp.HandleMsg(e.nbr, Msg{Withdraw: true, Color: ColorRed})
		} else {
			sp.HandleMsg(e.nbr, Msg{Route: &Route{Path: e.path, Color: ColorRed}, Color: ColorRed})
		}
	}
	for nbr, f := range finals {
		got := sp.RibIn(nbr)
		if f.withdraw {
			if got != nil {
				t.Errorf("nbr %d: RIB %v after final withdrawal", nbr, got)
			}
			continue
		}
		if got == nil || len(got.Path) != len(f.path) {
			t.Errorf("nbr %d: RIB %v, want path %v", nbr, got, f.path)
		}
	}
}
