package bgp

import (
	"testing"
	"time"

	"stamp/internal/sim"
	"stamp/internal/topology"
)

// speakerRig wires one Speaker on a 3-AS star (0 provider of 1, 2 peer of
// 1) with a captured outbox.
type speakerRig struct {
	g    *topology.Graph
	e    *sim.Engine
	sp   *Speaker
	sent []struct {
		to topology.ASN
		m  Msg
	}
}

func newSpeakerRig(t *testing.T, mrai bool) *speakerRig {
	t.Helper()
	g := topology.NewGraph(3)
	if err := g.AddProviderLink(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.AddPeerLink(1, 2); err != nil {
		t.Fatal(err)
	}
	p := sim.DefaultParams()
	p.MRAIEnabled = mrai
	rig := &speakerRig{g: g, e: sim.NewEngine(p, 1)}
	rig.sp = NewSpeaker(1, ColorRed, g, rig.e, func(to topology.ASN, m Msg) {
		rig.sent = append(rig.sent, struct {
			to topology.ASN
			m  Msg
		}{to, m})
	})
	return rig
}

func route(path ...topology.ASN) *Route {
	return &Route{Path: path, Color: ColorRed}
}

func TestSpeakerSelectsBest(t *testing.T) {
	rig := newSpeakerRig(t, false)
	// Provider route from 0 (pref 80), then peer route from 2 (pref 90).
	rig.sp.HandleMsg(0, Msg{Route: route(0, 9)})
	if b := rig.sp.Best(); b == nil || b.From != 0 {
		t.Fatalf("best = %v, want via 0", b)
	}
	rig.sp.HandleMsg(2, Msg{Route: route(2, 9)})
	if b := rig.sp.Best(); b == nil || b.From != 2 {
		t.Fatalf("best = %v, want peer route via 2", b)
	}
}

func TestSpeakerLoopRejection(t *testing.T) {
	rig := newSpeakerRig(t, false)
	rig.sp.HandleMsg(0, Msg{Route: route(0, 1, 9)}) // contains self (1)
	if rig.sp.Best() != nil {
		t.Error("looped route installed")
	}
	// A looped update also acts as implicit withdrawal.
	rig.sp.HandleMsg(0, Msg{Route: route(0, 9)})
	rig.sp.HandleMsg(0, Msg{Route: route(0, 1, 9)})
	if rig.sp.Best() != nil {
		t.Error("looped update did not withdraw previous route")
	}
}

func TestSpeakerWithdraw(t *testing.T) {
	rig := newSpeakerRig(t, false)
	rig.sp.HandleMsg(0, Msg{Route: route(0, 9)})
	rig.sp.HandleMsg(0, Msg{Withdraw: true, Color: ColorRed})
	if rig.sp.Best() != nil {
		t.Error("route survived withdrawal")
	}
	if !rig.sp.Unstable {
		t.Error("withdrawal should flag instability")
	}
}

func TestSpeakerIgnoresWrongColor(t *testing.T) {
	rig := newSpeakerRig(t, false)
	rig.sp.HandleMsg(0, Msg{Route: &Route{Path: []topology.ASN{0, 9}, Color: ColorBlue}, Color: ColorBlue})
	if rig.sp.Best() != nil {
		t.Error("blue message accepted by red speaker")
	}
}

func TestSpeakerOriginateWins(t *testing.T) {
	rig := newSpeakerRig(t, false)
	rig.sp.HandleMsg(2, Msg{Route: route(2, 9)})
	rig.sp.Originate()
	if b := rig.sp.Best(); b == nil || !b.Origin {
		t.Fatalf("best = %v, want originated route", b)
	}
	rig.sp.StopOriginating()
	if b := rig.sp.Best(); b == nil || b.Origin {
		t.Fatalf("best = %v, want learned route after withdrawal of origin", b)
	}
}

func TestSpeakerPeerDownLosesRoutes(t *testing.T) {
	rig := newSpeakerRig(t, false)
	rig.sp.HandleMsg(0, Msg{Route: route(0, 9)})
	rig.sp.PeerDown(0)
	if rig.sp.Best() != nil {
		t.Error("route survived session teardown")
	}
	if rig.sp.SessionUp(0) {
		t.Error("session still up")
	}
	// Messages to a down session are not sent.
	rig.sent = nil
	rig.sp.SetDesired(0, Out{Route: route(1, 9)})
	if len(rig.sent) != 0 {
		t.Errorf("sent %d messages over a down session", len(rig.sent))
	}
	// PeerUp replays the desired announcement.
	rig.sp.PeerUp(0)
	if _, err := rig.e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rig.sent) != 1 || rig.sent[0].to != 0 {
		t.Fatalf("sent = %v, want one replayed announcement to 0", rig.sent)
	}
}

func TestSpeakerWithdrawalImmediateMRAIPacesUpdates(t *testing.T) {
	rig := newSpeakerRig(t, true)
	rig.sp.SetDesired(0, Out{Route: route(1, 9)})
	if len(rig.sent) != 1 {
		t.Fatalf("first announcement not immediate (sent=%d)", len(rig.sent))
	}
	// A different route while the MRAI timer runs must be held back.
	rig.sp.SetDesired(0, Out{Route: route(1, 8)})
	if len(rig.sent) != 1 {
		t.Fatal("second announcement not paced by MRAI")
	}
	// A withdrawal goes out immediately regardless.
	rig.sp.SetDesired(0, Out{})
	if len(rig.sent) != 2 || !rig.sent[1].m.Withdraw {
		t.Fatalf("withdrawal was delayed: %v", rig.sent)
	}
	// Re-announce: still inside MRAI, so queued until expiry.
	rig.sp.SetDesired(0, Out{Route: route(1, 7)})
	if len(rig.sent) != 2 {
		t.Fatal("announcement during MRAI window not held")
	}
	if _, err := rig.e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rig.sent) != 3 {
		t.Fatalf("queued announcement not flushed at MRAI expiry: %v", rig.sent)
	}
	if got := rig.sent[2].m.Route.Path[1]; got != 7 {
		t.Errorf("flushed route = %v, want latest desired (…7)", rig.sent[2].m.Route)
	}
}

func TestSpeakerDuplicateSuppression(t *testing.T) {
	rig := newSpeakerRig(t, false)
	r := route(1, 9)
	rig.sp.SetDesired(0, Out{Route: r})
	if _, err := rig.e.Run(); err != nil {
		t.Fatal(err)
	}
	n := len(rig.sent)
	rig.sp.SetDesired(0, Out{Route: r.Clone()})
	if _, err := rig.e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rig.sent) != n {
		t.Error("identical announcement re-sent")
	}
	// Withdrawing nothing sends nothing.
	rig.sp.SetDesired(2, Out{})
	if len(rig.sent) != n {
		t.Error("withdrawal sent for never-announced route")
	}
}

func TestSpeakerCauseBypassesMRAI(t *testing.T) {
	rig := newSpeakerRig(t, true)
	cause := &Cause{A: 5, B: 6}
	rig.sp.SetDesired(0, Out{Route: route(1, 9)})
	rig.sp.SetDesired(0, Out{Route: route(1, 8), Cause: cause})
	if len(rig.sent) != 2 {
		t.Fatalf("root-caused update paced by MRAI (sent=%d)", len(rig.sent))
	}
	if rig.sent[1].m.RootCause != cause {
		t.Error("root cause not attached")
	}
}

func TestSpeakerUnstableSettles(t *testing.T) {
	p := sim.DefaultParams()
	p.SettleDelay = time.Second
	g := topology.NewGraph(2)
	if err := g.AddProviderLink(1, 0); err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine(p, 1)
	sp := NewSpeaker(1, ColorRed, g, e, func(topology.ASN, Msg) {})
	sp.HandleMsg(0, Msg{Route: route(0, 9)})
	sp.HandleMsg(0, Msg{Route: route(0, 8, 9), CausedByLoss: true})
	if !sp.Unstable {
		t.Fatal("loss-caused change did not set Unstable")
	}
	stabilized := false
	sp.OnStabilize = func() { stabilized = true }
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sp.Unstable || !stabilized {
		t.Error("Unstable did not settle after quiet period")
	}
}

func TestSpeakerOnBestChangeLossFlag(t *testing.T) {
	rig := newSpeakerRig(t, false)
	var losses []bool
	rig.sp.OnBestChange = func(loss bool) { losses = append(losses, loss) }
	rig.sp.HandleMsg(0, Msg{Route: route(0, 9)})                        // gain
	rig.sp.HandleMsg(0, Msg{Route: route(0, 8, 9), CausedByLoss: true}) // loss-caused change
	rig.sp.HandleMsg(0, Msg{Withdraw: true, Color: ColorRed})           // loss
	want := []bool{false, true, true}
	if len(losses) != len(want) {
		t.Fatalf("losses = %v, want %v", losses, want)
	}
	for i := range want {
		if losses[i] != want[i] {
			t.Fatalf("losses = %v, want %v", losses, want)
		}
	}
}
