package bgp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stamp/internal/topology"
)

func TestColorOther(t *testing.T) {
	if ColorRed.Other() != ColorBlue || ColorBlue.Other() != ColorRed {
		t.Error("Other() broken")
	}
	if ColorRed.String() != "red" || ColorBlue.String() != "blue" {
		t.Error("String() broken")
	}
}

func TestRouteClone(t *testing.T) {
	r := &Route{Path: []topology.ASN{1, 2, 3}, From: 1, Lock: true, Color: ColorBlue}
	c := r.Clone()
	c.Path[0] = 99
	if r.Path[0] != 1 {
		t.Error("Clone shares path storage")
	}
	var nilRoute *Route
	if nilRoute.Clone() != nil {
		t.Error("Clone of nil should be nil")
	}
}

func TestRouteEqual(t *testing.T) {
	a := &Route{Path: []topology.ASN{1, 2}, Lock: true, Color: ColorRed}
	b := &Route{Path: []topology.ASN{1, 2}, Lock: true, Color: ColorRed}
	if !a.Equal(b) {
		t.Error("identical routes not equal")
	}
	b.Lock = false
	if a.Equal(b) {
		t.Error("lock difference ignored")
	}
	b.Lock = true
	b.Color = ColorBlue
	if a.Equal(b) {
		t.Error("color difference ignored")
	}
	if a.Equal(nil) {
		t.Error("nil equality")
	}
	var n1, n2 *Route
	if !n1.Equal(n2) {
		t.Error("nil routes should be equal")
	}
}

func TestLocalPref(t *testing.T) {
	origin := &Route{Origin: true}
	cust := &Route{FromRel: topology.RelCustomer}
	peer := &Route{FromRel: topology.RelPeer}
	prov := &Route{FromRel: topology.RelProvider}
	if !(LocalPref(origin) > LocalPref(cust) && LocalPref(cust) > LocalPref(peer) && LocalPref(peer) > LocalPref(prov)) {
		t.Error("local preference ordering broken")
	}
}

func TestBetterOrdering(t *testing.T) {
	shortProv := &Route{Path: []topology.ASN{9}, From: 9, FromRel: topology.RelProvider}
	longCust := &Route{Path: []topology.ASN{3, 4, 5, 6}, From: 3, FromRel: topology.RelCustomer}
	if !Better(longCust, shortProv) {
		t.Error("prefer-customer violated: long customer route should beat short provider route")
	}
	shortCust := &Route{Path: []topology.ASN{7, 8}, From: 7, FromRel: topology.RelCustomer}
	if !Better(shortCust, longCust) {
		t.Error("shorter path should win at equal preference")
	}
	a := &Route{Path: []topology.ASN{2, 8}, From: 2, FromRel: topology.RelCustomer}
	b := &Route{Path: []topology.ASN{5, 8}, From: 5, FromRel: topology.RelCustomer}
	if !Better(a, b) {
		t.Error("lower neighbor ASN should win the final tie-break")
	}
	if Better(nil, a) || !Better(a, nil) {
		t.Error("nil handling broken")
	}
}

// TestBetterIsStrictOrder property-checks that Better is a strict total
// order on distinct routes: irreflexive and asymmetric.
func TestBetterIsStrictOrder(t *testing.T) {
	gen := func(rng *rand.Rand) *Route {
		rels := []topology.Rel{topology.RelCustomer, topology.RelPeer, topology.RelProvider}
		n := 1 + rng.Intn(4)
		p := make([]topology.ASN, n)
		for i := range p {
			p[i] = topology.ASN(rng.Intn(5))
		}
		return &Route{Path: p, From: p[0], FromRel: rels[rng.Intn(len(rels))]}
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		a, b := gen(rng), gen(rng)
		if Better(a, b) && Better(b, a) {
			t.Fatalf("Better not asymmetric: %v vs %v", a, b)
		}
		if Better(a, a) {
			t.Fatalf("Better not irreflexive: %v", a)
		}
	}
}

func TestCanExport(t *testing.T) {
	cust := &Route{FromRel: topology.RelCustomer}
	peer := &Route{FromRel: topology.RelPeer}
	prov := &Route{FromRel: topology.RelProvider}
	origin := &Route{Origin: true}

	type tc struct {
		r    *Route
		to   topology.Rel
		want bool
	}
	cases := []tc{
		{cust, topology.RelProvider, true},
		{cust, topology.RelPeer, true},
		{cust, topology.RelCustomer, true},
		{peer, topology.RelProvider, false},
		{peer, topology.RelPeer, false},
		{peer, topology.RelCustomer, true},
		{prov, topology.RelProvider, false},
		{prov, topology.RelPeer, false},
		{prov, topology.RelCustomer, true},
		{origin, topology.RelProvider, true},
		{nil, topology.RelCustomer, false},
	}
	for _, c := range cases {
		if got := CanExport(c.r, c.to); got != c.want {
			t.Errorf("CanExport(%v, %v) = %v, want %v", c.r, c.to, got, c.want)
		}
	}
}

func TestAdvertised(t *testing.T) {
	base := &Route{Path: []topology.ASN{4, 5}, From: 4, Lock: true, Color: ColorRed}
	adv := Advertised(7, base, false, ColorBlue)
	want := []topology.ASN{7, 4, 5}
	if len(adv.Path) != len(want) {
		t.Fatalf("path = %v, want %v", adv.Path, want)
	}
	for i := range want {
		if adv.Path[i] != want[i] {
			t.Fatalf("path = %v, want %v", adv.Path, want)
		}
	}
	if adv.Lock {
		t.Error("lock should be forced to the given value")
	}
	if adv.Color != ColorBlue {
		t.Error("color not set")
	}
	// The base must not be aliased.
	adv.Path[1] = 99
	if base.Path[0] != 4 {
		t.Error("Advertised aliases base path")
	}
}

// TestAdvertisedProperty checks Path/Lock/Color invariants with quick.
func TestAdvertisedProperty(t *testing.T) {
	f := func(self uint8, hops []uint8, lock bool) bool {
		base := &Route{Path: make([]topology.ASN, len(hops))}
		for i, h := range hops {
			base.Path[i] = topology.ASN(h)
		}
		adv := Advertised(topology.ASN(self), base, lock, ColorBlue)
		if len(adv.Path) != len(base.Path)+1 || adv.Path[0] != topology.ASN(self) {
			return false
		}
		return adv.Lock == lock && adv.Color == ColorBlue
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCauseRouteAffected(t *testing.T) {
	r := &Route{Path: []topology.ASN{1, 2, 3}}
	link := &Cause{A: 2, B: 3}
	if !link.RouteAffected(r) {
		t.Error("link cause on path not detected")
	}
	rev := &Cause{A: 3, B: 2}
	if !rev.RouteAffected(r) {
		t.Error("reversed link cause not detected")
	}
	miss := &Cause{A: 1, B: 3}
	if miss.RouteAffected(r) {
		t.Error("non-adjacent pair matched")
	}
	node := &Cause{A: 2, B: -1}
	if !node.IsNode() || !node.RouteAffected(r) {
		t.Error("node cause not detected")
	}
	if (&Cause{A: 9, B: -1}).RouteAffected(r) {
		t.Error("unrelated node matched")
	}
	if link.RouteAffected(nil) {
		t.Error("nil route affected")
	}
}

func TestMsgString(t *testing.T) {
	m := Msg{Withdraw: true, Color: ColorBlue}
	if m.String() == "" {
		t.Error("empty String for withdraw")
	}
	m2 := Msg{Route: &Route{Path: []topology.ASN{1}}, CausedByLoss: true}
	if m2.String() == "" {
		t.Error("empty String for update")
	}
}
