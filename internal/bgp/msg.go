package bgp

import (
	"fmt"

	"stamp/internal/topology"
)

// Msg is the routing message exchanged between simulated AS processes. It
// models a single-prefix BGP UPDATE: either an announcement carrying a
// Route or a withdrawal.
type Msg struct {
	// Withdraw is true for a route withdrawal; Route is nil then.
	Withdraw bool
	// Route is the announced route (receiver perspective: Path[0] is the
	// sender). Nil iff Withdraw.
	Route *Route
	// Color identifies the routing process the message belongs to.
	Color Color
	// CausedByLoss is the inverse of the paper's ET (Event Type)
	// attribute: true (ET=0) when the update was ultimately triggered by
	// the loss of a route, false (ET=1) otherwise. STAMP uses it on the
	// data plane to decide when to switch to the other process's route.
	CausedByLoss bool
	// Failover marks an R-BGP failover-path advertisement, which is kept
	// out of the normal decision process and only used when the primary
	// next hop is unavailable.
	Failover bool
	// RootCause carries R-BGP's root-cause information: the link (or
	// single AS, with B == -1) whose failure triggered this message.
	// Receivers with RCI enabled purge all routes crossing the cause.
	RootCause *Cause
}

// Cause identifies the root cause of a routing event for R-BGP's RCI
// mechanism: the failed link {A, B}, or a failed AS A when B is -1.
type Cause struct {
	A, B topology.ASN
}

// IsNode reports whether the cause is a whole-AS failure.
func (c *Cause) IsNode() bool { return c.B < 0 }

// RouteAffected reports whether route r, held by an AS adjacent to `from`,
// is invalidated by the cause: its path crosses the failed link or failed
// AS.
func (c *Cause) RouteAffected(r *Route) bool {
	if r == nil || c == nil {
		return false
	}
	if c.IsNode() {
		return r.ContainsAS(c.A)
	}
	return r.ContainsLink(c.A, c.B)
}

// String renders the message for logs and tests.
func (m Msg) String() string {
	if m.Withdraw {
		s := fmt.Sprintf("withdraw(%s)", m.Color)
		if m.RootCause != nil {
			s += fmt.Sprintf("+rc(%d,%d)", m.RootCause.A, m.RootCause.B)
		}
		return s
	}
	kind := "update"
	if m.Failover {
		kind = "failover"
	}
	et := 1
	if m.CausedByLoss {
		et = 0
	}
	return fmt.Sprintf("%s(%s, ET=%d)", kind, m.Route, et)
}
