package bgp

import (
	"time"

	"stamp/internal/sim"
	"stamp/internal/topology"
)

// Out describes what a node wants advertised to one neighbor: a route, or
// nil for withdrawal, plus the event-type metadata to attach.
type Out struct {
	// Route is the route to advertise (receiver perspective), nil to
	// withdraw any previous advertisement.
	Route *Route
	// Loss marks the advertisement as ultimately caused by a route loss
	// (the paper's ET=0).
	Loss bool
	// Cause optionally carries R-BGP root-cause information.
	Cause *Cause
}

// Speaker is one BGP routing process at one AS: it maintains the
// Adj-RIB-In, runs the decision process, and paces outbound announcements
// with per-peer MRAI timers. What gets announced to whom is decided by the
// owning node via SetDesired, which is how STAMP's selective announcements
// and R-BGP's failover advertisements are layered on top of an unchanged
// process — exactly the paper's "mostly unchanged BGP process" design.
type Speaker struct {
	Self  topology.ASN
	Color Color
	G     *topology.Graph
	E     *sim.Engine
	// Send transmits a message to a neighbor. Set by the owning node.
	Send func(to topology.ASN, m Msg)
	// OnBestChange fires after the best route changes; loss reports
	// whether the change was triggered by losing a route (ET=0 semantics).
	OnBestChange func(loss bool)

	ribIn     map[topology.ASN]*Route
	best      *Route
	origin    *Route
	sessionUp map[topology.ASN]bool

	desired     map[topology.ASN]Out
	lastSent    map[topology.ASN]*Route
	mraiRunning map[topology.ASN]bool

	// Unstable is the data-plane instability flag of §5.2: set when the
	// process loses its route or its best route is replaced due to a
	// loss-caused update; cleared when a non-loss update installs a best
	// route or when the process settles (no loss-caused changes for the
	// engine's SettleDelay). The forwarding plane switches colors based
	// on it.
	Unstable bool
	// OnStabilize, when non-nil, fires when the settle timer clears
	// Unstable, so owners can refresh data-plane observers.
	OnStabilize func()

	lastLossAt time.Duration

	// UpdatesSent counts announcements, WithdrawalsSent withdrawals, for
	// the protocol overhead experiment.
	UpdatesSent     int64
	WithdrawalsSent int64
}

// NewSpeaker builds a speaker for AS self with sessions to all its
// topology neighbors initially up.
func NewSpeaker(self topology.ASN, color Color, g *topology.Graph, e *sim.Engine, send func(to topology.ASN, m Msg)) *Speaker {
	s := &Speaker{
		Self:        self,
		Color:       color,
		G:           g,
		E:           e,
		Send:        send,
		ribIn:       make(map[topology.ASN]*Route),
		sessionUp:   make(map[topology.ASN]bool),
		desired:     make(map[topology.ASN]Out),
		lastSent:    make(map[topology.ASN]*Route),
		mraiRunning: make(map[topology.ASN]bool),
	}
	var nbrs []topology.ASN
	for _, n := range g.Neighbors(nbrs, self) {
		s.sessionUp[n] = true
	}
	return s
}

// Best returns the current best route (nil if none).
func (s *Speaker) Best() *Route { return s.best }

// BestPath exports the selected route's AS path for RIB dumps and
// sim-vs-live differential validation: ok is false when the process has
// no route; a locally originated route yields an empty (non-nil) path.
// The returned slice is a copy.
func (s *Speaker) BestPath() (path []topology.ASN, ok bool) {
	if s.best == nil {
		return nil, false
	}
	if s.best.Origin {
		return []topology.ASN{}, true
	}
	return append([]topology.ASN(nil), s.best.Path...), true
}

// RibIn returns the route learned from one neighbor (nil if none).
func (s *Speaker) RibIn(nbr topology.ASN) *Route { return s.ribIn[nbr] }

// RibInAll iterates over all Adj-RIB-In entries.
func (s *Speaker) RibInAll(f func(nbr topology.ASN, r *Route)) {
	for n, r := range s.ribIn {
		f(n, r)
	}
}

// SessionUp reports whether the session to nbr is up.
func (s *Speaker) SessionUp(nbr topology.ASN) bool { return s.sessionUp[nbr] }

// Originate makes this speaker the origin of the prefix.
func (s *Speaker) Originate() {
	s.origin = &Route{From: s.Self, Origin: true, Color: s.Color}
	s.evaluate(false)
}

// StopOriginating withdraws local origination (a route withdrawal event).
func (s *Speaker) StopOriginating() {
	if s.origin == nil {
		return
	}
	s.origin = nil
	s.evaluate(true)
}

// HandleMsg processes one inbound routing message. Messages from down
// sessions are discarded: no session, no routes — the network layer
// already drops in-flight traffic on failure, this guards the speaker
// itself.
func (s *Speaker) HandleMsg(from topology.ASN, m Msg) {
	if m.Color != s.Color || !s.sessionUp[from] {
		return
	}
	if m.Withdraw {
		if _, ok := s.ribIn[from]; !ok {
			return
		}
		delete(s.ribIn, from)
		s.evaluate(true)
		return
	}
	r := m.Route.Clone()
	if r.ContainsAS(s.Self) {
		// Loop: the neighbor now routes through us; treat as implicit
		// withdrawal of whatever it previously offered.
		if _, ok := s.ribIn[from]; ok {
			delete(s.ribIn, from)
			s.evaluate(true)
		}
		return
	}
	r.From = from
	r.FromRel = s.G.Rel(s.Self, from)
	s.ribIn[from] = r
	s.evaluate(m.CausedByLoss)
}

// PeerDown tears down the session to nbr: its routes are lost and nothing
// further is sent to it until PeerUp.
func (s *Speaker) PeerDown(nbr topology.ASN) {
	if !s.sessionUp[nbr] {
		return
	}
	s.sessionUp[nbr] = false
	delete(s.lastSent, nbr)
	if _, ok := s.ribIn[nbr]; ok {
		delete(s.ribIn, nbr)
		s.evaluate(true)
	}
}

// PeerUp restores the session to nbr and replays the desired
// advertisement.
func (s *Speaker) PeerUp(nbr topology.ASN) {
	if s.sessionUp[nbr] {
		return
	}
	s.sessionUp[nbr] = true
	s.pump(nbr)
}

// SetDesired records what should be advertised to nbr and pumps the
// output machinery (immediately for withdrawals, MRAI-paced for
// announcements).
func (s *Speaker) SetDesired(nbr topology.ASN, o Out) {
	s.desired[nbr] = o
	s.pump(nbr)
}

// Desired returns the currently desired advertisement for nbr.
func (s *Speaker) Desired(nbr topology.ASN) Out { return s.desired[nbr] }

// evaluate reruns the decision process; loss tags the triggering event as
// loss-caused for ET bookkeeping.
func (s *Speaker) evaluate(loss bool) {
	var best *Route
	if s.origin != nil {
		best = s.origin
	}
	for _, r := range s.ribIn {
		if Better(r, best) {
			best = r
		}
	}
	if routesIdentical(best, s.best) {
		s.best = best
		return
	}
	s.best = best
	if loss {
		s.Unstable = true
		s.lastLossAt = s.E.Now()
		if d := s.E.P.SettleDelay; d > 0 {
			at := s.lastLossAt
			s.E.After(d, func() {
				if s.Unstable && s.lastLossAt == at {
					s.Unstable = false
					if s.OnStabilize != nil {
						s.OnStabilize()
					}
				}
			})
		}
	} else if best != nil {
		s.Unstable = false
	}
	if s.OnBestChange != nil {
		s.OnBestChange(loss)
	}
}

// routesIdentical compares two routes including receiver-local fields, to
// suppress no-op best changes.
func routesIdentical(a, b *Route) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.From == b.From && a.Equal(b)
}

// pump advances the output state machine for one neighbor.
func (s *Speaker) pump(nbr topology.ASN) {
	if !s.sessionUp[nbr] {
		return
	}
	d := s.desired[nbr]
	last := s.lastSent[nbr]
	if d.Route == nil {
		if last != nil {
			delete(s.lastSent, nbr)
			s.WithdrawalsSent++
			s.Send(nbr, Msg{Withdraw: true, Color: s.Color, CausedByLoss: true, RootCause: d.Cause})
		}
		return
	}
	if last != nil && d.Route.Equal(last) {
		return
	}
	if d.Cause != nil {
		// Root-caused updates (R-BGP RCI) bypass MRAI: the failure
		// information must outrun stale-path exploration to be useful.
		s.lastSent[nbr] = d.Route
		s.UpdatesSent++
		s.Send(nbr, Msg{Route: d.Route.Clone(), Color: s.Color, CausedByLoss: d.Loss, RootCause: d.Cause})
		return
	}
	if s.mraiRunning[nbr] {
		return // pump re-runs when the timer expires
	}
	s.lastSent[nbr] = d.Route
	s.UpdatesSent++
	s.Send(nbr, Msg{Route: d.Route.Clone(), Color: s.Color, CausedByLoss: d.Loss, RootCause: d.Cause})
	s.mraiRunning[nbr] = true
	s.E.After(s.E.MRAI(), func() {
		s.mraiRunning[nbr] = false
		s.pump(nbr)
	})
}

// HasRoute reports whether the process currently has any route.
func (s *Speaker) HasRoute() bool { return s.best != nil }

// NextHop returns the forwarding next hop of the best route. For an
// originated route ok is true with the AS itself, which callers treat as
// "delivered".
func (s *Speaker) NextHop() (topology.ASN, bool) {
	if s.best == nil {
		return 0, false
	}
	return s.best.From, true
}
