// Package bgp implements the BGP route model, policy engine, and the
// per-process "speaker" used by every protocol in this repository:
// standard BGP, R-BGP, and the red/blue processes of STAMP.
//
// The simulation is per-prefix: each run studies routing toward a single
// destination AS, which is how the paper's experiments are structured.
package bgp

import (
	"fmt"
	"strings"

	"stamp/internal/topology"
)

// Color identifies which of STAMP's two routing processes a route or
// message belongs to. Plain BGP and R-BGP use ColorRed throughout.
type Color uint8

const (
	// ColorRed is STAMP's red process (also used by single-process
	// protocols).
	ColorRed Color = iota
	// ColorBlue is STAMP's blue process.
	ColorBlue
)

// Other returns the opposite color.
func (c Color) Other() Color {
	if c == ColorRed {
		return ColorBlue
	}
	return ColorRed
}

// String returns "red" or "blue".
func (c Color) String() string {
	if c == ColorRed {
		return "red"
	}
	return "blue"
}

// Route is one BGP route toward the (implicit) destination prefix as held
// in an AS's Adj-RIB-In or Loc-RIB.
type Route struct {
	// Path is the AS path from the holder toward the origin: Path[0] is
	// the neighbor the route was learned from (the forwarding next hop),
	// Path[len-1] is the origin AS. For a route originated locally, Path
	// is empty and Origin is true.
	Path []topology.ASN
	// From is the neighbor the route was learned from (== Path[0] for
	// learned routes, the local AS for originated ones).
	From topology.ASN
	// FromRel is the business relationship of From as seen by the local
	// AS, which determines local preference and export policy.
	FromRel topology.Rel
	// Origin marks a locally originated route.
	Origin bool
	// Lock is STAMP's Lock path attribute: a locked blue route must keep
	// propagating to at least one provider, guaranteeing a blue path
	// reaches a tier-1 AS.
	Lock bool
	// Color is the routing process the route belongs to.
	Color Color
}

// Clone returns a deep copy of the route.
func (r *Route) Clone() *Route {
	if r == nil {
		return nil
	}
	c := *r
	c.Path = append([]topology.ASN(nil), r.Path...)
	return &c
}

// ContainsAS reports whether v appears on the route's AS path.
func (r *Route) ContainsAS(v topology.ASN) bool {
	return topology.PathContainsAS(r.Path, v)
}

// ContainsLink reports whether the AS path traverses the undirected link
// {a, b}. The holder-side first hop (holder -> Path[0]) is not covered,
// because the holder is not recorded in Path; callers that need it check
// From separately.
func (r *Route) ContainsLink(a, b topology.ASN) bool {
	return topology.PathContainsLink(r.Path, a, b)
}

// String renders the route compactly for logs and tests.
func (r *Route) String() string {
	if r == nil {
		return "<no route>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s[", r.Color)
	if r.Origin {
		b.WriteString("origin")
	} else {
		for i, v := range r.Path {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", v)
		}
	}
	b.WriteByte(']')
	if r.Lock {
		b.WriteString("+lock")
	}
	return b.String()
}

// Equal reports whether two routes would be indistinguishable on the wire
// (same path, lock bit, and color). From/FromRel are receiver-local and
// not compared.
func (r *Route) Equal(o *Route) bool {
	if r == nil || o == nil {
		return r == o
	}
	if r.Origin != o.Origin || r.Lock != o.Lock || r.Color != o.Color || len(r.Path) != len(o.Path) {
		return false
	}
	for i := range r.Path {
		if r.Path[i] != o.Path[i] {
			return false
		}
	}
	return true
}

// LocalPref maps the relationship a route was learned over to its local
// preference, implementing the prefer-customer policy: customer routes
// over peer routes over provider routes. Originated routes outrank all.
func LocalPref(r *Route) int {
	if r.Origin {
		return 1000
	}
	switch r.FromRel {
	case topology.RelCustomer:
		return 100
	case topology.RelPeer:
		return 90
	case topology.RelProvider:
		return 80
	}
	return 0
}

// Better reports whether a is preferred over b under the deterministic BGP
// decision process: higher local preference, then shorter AS path, then
// lowest neighbor ASN as the final tie-break. A nil route is worse than
// any route.
func Better(a, b *Route) bool {
	if a == nil {
		return false
	}
	if b == nil {
		return true
	}
	la, lb := LocalPref(a), LocalPref(b)
	if la != lb {
		return la > lb
	}
	if len(a.Path) != len(b.Path) {
		return len(a.Path) < len(b.Path)
	}
	return a.From < b.From
}

// CanExport implements the valley-free export rule: a route learned from a
// customer (or originated locally) may be exported to anyone; routes
// learned from peers or providers may only be exported to customers.
func CanExport(r *Route, toRel topology.Rel) bool {
	if r == nil {
		return false
	}
	if r.Origin || r.FromRel == topology.RelCustomer {
		return true
	}
	return toRel == topology.RelCustomer
}

// Advertised builds the route as it will be received by a neighbor when
// self advertises base: self is prepended to the AS path, the Lock bit is
// forced to lock, and the color set to c. From/FromRel are filled in by
// the receiver.
func Advertised(self topology.ASN, base *Route, lock bool, c Color) *Route {
	path := make([]topology.ASN, 0, len(base.Path)+1)
	path = append(path, self)
	path = append(path, base.Path...)
	return &Route{Path: path, Lock: lock, Color: c}
}
