package bgp

import (
	"stamp/internal/sim"
	"stamp/internal/topology"
)

// Node is a standard BGP router for one AS: a single routing process with
// prefer-customer selection and valley-free export. It implements
// sim.Node.
type Node struct {
	Self topology.ASN
	G    *topology.Graph
	Net  *sim.Network
	Sp   *Speaker

	// OnRouteEvent fires whenever the node's forwarding behavior may have
	// changed; the experiment drivers use it to schedule data-plane
	// sweeps.
	OnRouteEvent func()
	// OnTableChange fires only when the routing table (best route)
	// actually changed, which is what convergence-time measurements care
	// about.
	OnTableChange func()
}

// NewNode builds a standard BGP node for AS self and registers it with
// the network.
func NewNode(self topology.ASN, g *topology.Graph, e *sim.Engine, net *sim.Network) *Node {
	n := &Node{Self: self, G: g, Net: net}
	n.Sp = NewSpeaker(self, ColorRed, g, e, func(to topology.ASN, m Msg) {
		net.Send(self, to, m)
	})
	n.Sp.OnBestChange = n.bestChanged
	net.Register(self, n)
	return n
}

// Originate starts announcing the destination prefix from this AS.
func (n *Node) Originate() { n.Sp.Originate() }

// WithdrawOrigin withdraws the locally originated prefix (a route
// withdrawal event at the origin).
func (n *Node) WithdrawOrigin() { n.Sp.StopOriginating() }

// Recv implements sim.Node.
func (n *Node) Recv(from topology.ASN, payload any) {
	m, ok := payload.(Msg)
	if !ok || m.Failover {
		return
	}
	n.Sp.HandleMsg(from, m)
}

// LinkDown implements sim.Node.
func (n *Node) LinkDown(nbr topology.ASN) {
	n.Sp.PeerDown(nbr)
	n.notify()
}

// LinkUp implements sim.Node.
func (n *Node) LinkUp(nbr topology.ASN) {
	n.Sp.PeerUp(nbr)
	n.notify()
}

func (n *Node) bestChanged(loss bool) {
	n.recomputeDesired(loss)
	if n.OnTableChange != nil {
		n.OnTableChange()
	}
	n.notify()
}

func (n *Node) notify() {
	if n.OnRouteEvent != nil {
		n.OnRouteEvent()
	}
}

// recomputeDesired reapplies export policy after a best-route change.
func (n *Node) recomputeDesired(loss bool) {
	best := n.Sp.Best()
	var nbrs []topology.ASN
	for _, nbr := range n.G.Neighbors(nbrs, n.Self) {
		rel := n.G.Rel(n.Self, nbr)
		var out Out
		if best != nil && CanExport(best, rel) && !best.ContainsAS(nbr) && best.From != nbr {
			out = Out{Route: Advertised(n.Self, best, false, ColorRed), Loss: loss}
		}
		n.Sp.SetDesired(nbr, out)
	}
}

// NextHop returns the current forwarding next hop toward the destination,
// honoring link state: a next hop over a failed link is unusable. The
// second result is false when the node has no usable route. Origin nodes
// return themselves with ok true.
func (n *Node) NextHop() (topology.ASN, bool) {
	best := n.Sp.Best()
	if best == nil {
		return 0, false
	}
	if best.Origin {
		return n.Self, true
	}
	if !n.Net.LinkUp(n.Self, best.From) {
		return 0, false
	}
	return best.From, true
}
