package topology

import "container/heap"

// StaticRoutes computes the unique stable (Gao-Rexford) routing toward
// dest under prefer-customer / valley-free policies with deterministic
// tie-breaks matching the simulator's decision process: customer routes
// over peer routes over provider routes, then shortest AS path, then
// lowest next-hop ASN. The result holds, for every AS, its AS path to
// dest (nil if unreachable; the destination itself gets an empty,
// non-nil path).
//
// The event-driven simulator must converge to exactly this solution for
// plain BGP — the equivalence is asserted by tests — and the experiment
// harnesses use it for fast structural analyses.
func StaticRoutes(g *Graph, dest ASN) [][]ASN {
	n := g.Len()
	const inf = int32(1 << 30)

	// Phase 1 — customer routes: announcements climb provider edges, so
	// an AS has a customer route iff an uphill path dest→AS exists
	// (reversed). BFS by levels with lowest-next-hop tie-break.
	custDist := make([]int32, n)
	custNext := make([]ASN, n)
	for i := range custDist {
		custDist[i] = inf
		custNext[i] = -1
	}
	custDist[dest] = 0
	queue := []ASN{dest}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, p := range g.Providers(v) {
			switch {
			case custDist[p] == inf:
				custDist[p] = custDist[v] + 1
				custNext[p] = v
				queue = append(queue, p)
			case custDist[p] == custDist[v]+1 && v < custNext[p]:
				custNext[p] = v
			}
		}
	}

	// Phase 2 — peer routes: one peer step onto a customer route.
	peerDist := make([]int32, n)
	peerNext := make([]ASN, n)
	for i := range peerDist {
		peerDist[i] = inf
		peerNext[i] = -1
	}
	for v := 0; v < n; v++ {
		for _, u := range g.Peers(ASN(v)) {
			if custDist[u] == inf {
				continue
			}
			d := custDist[u] + 1
			if d < peerDist[v] || (d == peerDist[v] && u < peerNext[v]) {
				peerDist[v] = d
				peerNext[v] = u
			}
		}
	}

	// bestLocal is the customer-or-peer choice (customer wins regardless
	// of length).
	type route struct {
		dist int32
		next ASN
		kind int8 // 0 none, 1 customer, 2 peer, 3 provider
	}
	best := make([]route, n)
	for v := 0; v < n; v++ {
		switch {
		case custDist[v] != inf:
			best[v] = route{dist: custDist[v], next: custNext[v], kind: 1}
		case peerDist[v] != inf:
			best[v] = route{dist: peerDist[v], next: peerNext[v], kind: 2}
		}
	}
	best[dest] = route{dist: 0, next: dest, kind: 1}

	// Phase 3 — provider routes: an AS without a customer/peer route uses
	// the best route its providers announce (their own best, any kind).
	// Dijkstra downward; length strictly increases so it terminates.
	pq := &provHeap{}
	for v := 0; v < n; v++ {
		if best[v].kind != 0 {
			for _, c := range g.Customers(ASN(v)) {
				if best[c].kind == 0 {
					heap.Push(pq, provItem{dist: best[v].dist + 1, via: ASN(v), to: c})
				}
			}
		}
	}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(provItem)
		v := it.to
		if best[v].kind != 0 {
			continue // already settled (customer/peer or earlier provider)
		}
		best[v] = route{dist: it.dist, next: it.via, kind: 3}
		for _, c := range g.Customers(v) {
			if best[c].kind == 0 {
				heap.Push(pq, provItem{dist: it.dist + 1, via: v, to: c})
			}
		}
	}

	// Materialize paths by following next pointers.
	out := make([][]ASN, n)
	var build func(v ASN) []ASN
	built := make([]bool, n)
	build = func(v ASN) []ASN {
		if built[v] {
			return out[v]
		}
		built[v] = true
		if best[v].kind == 0 {
			out[v] = nil
			return nil
		}
		if v == dest {
			out[v] = []ASN{}
			return out[v]
		}
		rest := build(best[v].next)
		if rest == nil && best[v].next != dest {
			out[v] = nil
			return nil
		}
		path := make([]ASN, 0, len(rest)+1)
		path = append(path, best[v].next)
		path = append(path, rest...)
		out[v] = path
		return path
	}
	for v := 0; v < n; v++ {
		build(ASN(v))
	}
	return out
}

// provItem is a pending provider-route offer: via announces a route of
// the given total length to its customer `to`.
type provItem struct {
	dist int32
	via  ASN
	to   ASN
}

type provHeap []provItem

func (h provHeap) Len() int { return len(h) }
func (h provHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	return h[i].via < h[j].via
}
func (h provHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *provHeap) Push(x any)   { *h = append(*h, x.(provItem)) }
func (h *provHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
