package topology

import "testing"

func TestWithoutLinks(t *testing.T) {
	g := diamond(t)
	g2 := g.WithoutLinks([][2]ASN{{5, 3}, {0, 1}})
	if g2.Rel(5, 3) != RelNone {
		t.Error("provider link survived removal")
	}
	if g2.Rel(0, 1) != RelNone {
		t.Error("peer link survived removal")
	}
	if g2.Rel(5, 2) != RelProvider {
		t.Error("unrelated link removed")
	}
	// Reversed order must also match.
	g3 := g.WithoutLinks([][2]ASN{{3, 5}})
	if g3.Rel(5, 3) != RelNone {
		t.Error("reversed link spec not honored")
	}
	// Original untouched.
	if g.Rel(5, 3) != RelProvider {
		t.Error("original graph mutated")
	}
	if err := g2.Validate(); err != nil {
		t.Errorf("masked graph invalid: %v", err)
	}
}

func TestComputeStats(t *testing.T) {
	g := diamond(t)
	s := ComputeStats(g)
	if s.ASes != 6 {
		t.Errorf("ASes = %d", s.ASes)
	}
	if s.Tier1s != 2 {
		t.Errorf("Tier1s = %d", s.Tier1s)
	}
	if s.PeerLinks != 1 {
		t.Errorf("PeerLinks = %d", s.PeerLinks)
	}
	if s.Multihomed != 2 { // 3 and 5
		t.Errorf("Multihomed = %d", s.Multihomed)
	}
	if s.StubASes != 1 { // only 5 has no customers
		t.Errorf("StubASes = %d", s.StubASes)
	}
	if s.MaxTier != 3 {
		t.Errorf("MaxTier = %d", s.MaxTier)
	}
	if s.MeanDegree <= 0 || s.MaxDegree < 3 {
		t.Errorf("degree stats: %+v", s)
	}
}

func TestCustomerCone(t *testing.T) {
	g := diamond(t)
	cone := CustomerCone(g, 0)
	// 0's cone: itself, 2, 3, 5.
	want := []ASN{0, 2, 3, 5}
	if len(cone) != len(want) {
		t.Fatalf("cone = %v, want %v", cone, want)
	}
	for i := range want {
		if cone[i] != want[i] {
			t.Fatalf("cone = %v, want %v", cone, want)
		}
	}
	if got := CustomerCone(g, 5); len(got) != 1 || got[0] != 5 {
		t.Errorf("stub cone = %v, want [5]", got)
	}
}
