// Package topology models the Internet's AS-level topology: autonomous
// systems connected by customer-provider and peer-peer links, as used by
// the STAMP multi-process interdomain routing protocol (Liao et al.,
// ReArch'08) and the baselines it is evaluated against.
//
// The package provides the graph data structure itself, a synthetic
// Internet-like topology generator, a loader/writer for the standard
// "AS|AS|rel" text format, tier classification, valley-free path
// utilities, and an implementation of Gao's relationship inference
// algorithm.
package topology

import (
	"fmt"
	"sort"
)

// ASN identifies an autonomous system. ASNs are dense small integers in
// generated topologies but may be arbitrary non-negative values in loaded
// ones.
type ASN int32

// Rel is the business relationship between two neighboring ASes, expressed
// from the perspective of one of them.
type Rel int8

const (
	// RelNone means the two ASes are not neighbors.
	RelNone Rel = iota
	// RelCustomer means the neighbor is my customer (I am its provider).
	RelCustomer
	// RelPeer means the neighbor is my settlement-free peer.
	RelPeer
	// RelProvider means the neighbor is my provider (I am its customer).
	RelProvider
)

// String returns a human-readable relationship name.
func (r Rel) String() string {
	switch r {
	case RelNone:
		return "none"
	case RelCustomer:
		return "customer"
	case RelPeer:
		return "peer"
	case RelProvider:
		return "provider"
	}
	return fmt.Sprintf("Rel(%d)", int8(r))
}

// Invert flips the perspective of a relationship: if b is a's customer,
// then a is b's provider.
func (r Rel) Invert() Rel {
	switch r {
	case RelCustomer:
		return RelProvider
	case RelProvider:
		return RelCustomer
	default:
		return r
	}
}

// Graph is an AS-level topology. It is cheap to share read-only across
// goroutines once built; mutation is not goroutine-safe.
type Graph struct {
	n         int
	providers [][]ASN // providers[a] = ASes that are providers of a
	customers [][]ASN // customers[a] = ASes that are customers of a
	peers     [][]ASN // peers[a]     = ASes that peer with a
}

// NewGraph returns an empty graph over ASNs 0..n-1.
func NewGraph(n int) *Graph {
	return &Graph{
		n:         n,
		providers: make([][]ASN, n),
		customers: make([][]ASN, n),
		peers:     make([][]ASN, n),
	}
}

// Len returns the number of ASes in the graph.
func (g *Graph) Len() int { return g.n }

// valid reports whether a names an AS inside the graph.
func (g *Graph) valid(a ASN) bool { return a >= 0 && int(a) < g.n }

// AddProviderLink records that p is a provider of c (equivalently, c is a
// customer of p). Adding a duplicate or self link is an error.
func (g *Graph) AddProviderLink(c, p ASN) error {
	if !g.valid(c) || !g.valid(p) {
		return fmt.Errorf("topology: link %d->%d out of range [0,%d)", c, p, g.n)
	}
	if c == p {
		return fmt.Errorf("topology: self link at AS %d", c)
	}
	if g.Rel(c, p) != RelNone {
		return fmt.Errorf("topology: duplicate link between %d and %d", c, p)
	}
	g.providers[c] = append(g.providers[c], p)
	g.customers[p] = append(g.customers[p], c)
	return nil
}

// AddPeerLink records a settlement-free peering between a and b.
func (g *Graph) AddPeerLink(a, b ASN) error {
	if !g.valid(a) || !g.valid(b) {
		return fmt.Errorf("topology: peer link %d--%d out of range [0,%d)", a, b, g.n)
	}
	if a == b {
		return fmt.Errorf("topology: self peering at AS %d", a)
	}
	if g.Rel(a, b) != RelNone {
		return fmt.Errorf("topology: duplicate link between %d and %d", a, b)
	}
	g.peers[a] = append(g.peers[a], b)
	g.peers[b] = append(g.peers[b], a)
	return nil
}

// Rel returns the relationship of b from a's perspective: RelCustomer if b
// is a's customer, RelProvider if b is a's provider, RelPeer if they peer,
// RelNone otherwise.
func (g *Graph) Rel(a, b ASN) Rel {
	for _, p := range g.providers[a] {
		if p == b {
			return RelProvider
		}
	}
	for _, c := range g.customers[a] {
		if c == b {
			return RelCustomer
		}
	}
	for _, p := range g.peers[a] {
		if p == b {
			return RelPeer
		}
	}
	return RelNone
}

// Providers returns the providers of a. The returned slice is owned by the
// graph and must not be modified.
func (g *Graph) Providers(a ASN) []ASN { return g.providers[a] }

// Customers returns the customers of a. The returned slice is owned by the
// graph and must not be modified.
func (g *Graph) Customers(a ASN) []ASN { return g.customers[a] }

// Peers returns the peers of a. The returned slice is owned by the graph
// and must not be modified.
func (g *Graph) Peers(a ASN) []ASN { return g.peers[a] }

// Neighbors appends all neighbors of a to dst and returns it.
func (g *Graph) Neighbors(dst []ASN, a ASN) []ASN {
	dst = append(dst, g.providers[a]...)
	dst = append(dst, g.peers[a]...)
	dst = append(dst, g.customers[a]...)
	return dst
}

// Degree returns the total number of neighbors of a.
func (g *Graph) Degree(a ASN) int {
	return len(g.providers[a]) + len(g.customers[a]) + len(g.peers[a])
}

// IsMultihomed reports whether a has two or more providers.
func (g *Graph) IsMultihomed(a ASN) bool { return len(g.providers[a]) >= 2 }

// IsTier1 reports whether a has no providers. In generated topologies the
// tier-1 ASes form a full peering clique.
func (g *Graph) IsTier1(a ASN) bool { return len(g.providers[a]) == 0 }

// Tier1s returns all provider-free ASes in ascending order.
func (g *Graph) Tier1s() []ASN {
	var t []ASN
	for a := 0; a < g.n; a++ {
		if g.IsTier1(ASN(a)) {
			t = append(t, ASN(a))
		}
	}
	return t
}

// EdgeCount returns the number of distinct links (provider + peer).
func (g *Graph) EdgeCount() int {
	cp, pp := 0, 0
	for a := 0; a < g.n; a++ {
		cp += len(g.providers[a])
		pp += len(g.peers[a])
	}
	return cp + pp/2
}

// Links returns every link once, customer-provider links as (customer,
// provider, RelProvider) and peer links as (min, max, RelPeer), sorted.
func (g *Graph) Links() []Link {
	var links []Link
	for a := 0; a < g.n; a++ {
		for _, p := range g.providers[a] {
			links = append(links, Link{A: ASN(a), B: p, Rel: RelProvider})
		}
		for _, p := range g.peers[a] {
			if ASN(a) < p {
				links = append(links, Link{A: ASN(a), B: p, Rel: RelPeer})
			}
		}
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].A != links[j].A {
			return links[i].A < links[j].A
		}
		return links[i].B < links[j].B
	})
	return links
}

// Link is one topology edge. For Rel == RelProvider, B is the provider of
// A; for Rel == RelPeer the order of A and B carries no meaning.
type Link struct {
	A, B ASN
	Rel  Rel
}

// String renders the link in "A|B|rel" form.
func (l Link) String() string { return fmt.Sprintf("%d|%d|%s", l.A, l.B, l.Rel) }

// Validate checks structural invariants: the customer-provider digraph must
// be acyclic (the paper's standing assumption, which holds for the real
// Internet), and adjacency lists must be mutually consistent.
func (g *Graph) Validate() error {
	// Consistency of the three adjacency lists.
	for a := 0; a < g.n; a++ {
		for _, p := range g.providers[a] {
			if g.Rel(p, ASN(a)) != RelCustomer {
				return fmt.Errorf("topology: %d lists %d as provider but reverse edge missing", a, p)
			}
		}
		for _, p := range g.peers[a] {
			if g.Rel(p, ASN(a)) != RelPeer {
				return fmt.Errorf("topology: %d lists %d as peer but reverse edge missing", a, p)
			}
		}
	}
	if cycle := g.providerCycle(); cycle != nil {
		return fmt.Errorf("topology: customer-provider cycle %v", cycle)
	}
	return nil
}

// providerCycle returns one cycle in the customer->provider digraph, or nil
// if the hierarchy is acyclic.
func (g *Graph) providerCycle() []ASN {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	state := make([]int8, g.n)
	parent := make([]ASN, g.n)
	for i := range parent {
		parent[i] = -1
	}
	// Iterative DFS to survive deep hierarchies.
	type frame struct {
		node ASN
		next int
	}
	for start := 0; start < g.n; start++ {
		if state[start] != white {
			continue
		}
		stack := []frame{{node: ASN(start)}}
		state[start] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			provs := g.providers[f.node]
			if f.next < len(provs) {
				p := provs[f.next]
				f.next++
				switch state[p] {
				case white:
					state[p] = gray
					parent[p] = f.node
					stack = append(stack, frame{node: p})
				case gray:
					// Found a cycle: walk parents from f.node back to p.
					cycle := []ASN{p}
					for v := f.node; v != p && v != -1; v = parent[v] {
						cycle = append(cycle, v)
					}
					return cycle
				}
				continue
			}
			state[f.node] = black
			stack = stack[:len(stack)-1]
		}
	}
	return nil
}

// Tiers classifies every AS by its shortest provider-hop distance to a
// tier-1 AS: tier-1 ASes get tier 1, their direct customers tier 2, and so
// on. ASes that cannot reach a tier-1 (impossible in validated topologies)
// get tier 0.
func (g *Graph) Tiers() []int {
	tier := make([]int, g.n)
	queue := make([]ASN, 0, g.n)
	for a := 0; a < g.n; a++ {
		if g.IsTier1(ASN(a)) {
			tier[a] = 1
			queue = append(queue, ASN(a))
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, c := range g.customers[v] {
			if tier[c] == 0 {
				tier[c] = tier[v] + 1
				queue = append(queue, c)
			}
		}
	}
	return tier
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := NewGraph(g.n)
	for a := 0; a < g.n; a++ {
		c.providers[a] = append([]ASN(nil), g.providers[a]...)
		c.customers[a] = append([]ASN(nil), g.customers[a]...)
		c.peers[a] = append([]ASN(nil), g.peers[a]...)
	}
	return c
}

// FirstMultihomedAncestor returns, for a single-homed AS s, the first
// multi-homed AS on its provider chain (following the lowest-numbered
// provider at each single-homed hop, which is deterministic). If s itself
// is multi-homed it is returned unchanged. The boolean is false if the
// chain reaches a single-homed tier-1 (no multi-homed ancestor exists) or
// if s is an isolated/tier-1 AS.
//
// The paper uses this to extend the Φ disjointness metric to single-homed
// ASes: Φ(s) = Φ(m) where m is s's first multi-homed (direct or indirect)
// provider.
func (g *Graph) FirstMultihomedAncestor(s ASN) (ASN, bool) {
	v := s
	for hop := 0; hop <= g.n; hop++ {
		if g.IsMultihomed(v) {
			return v, true
		}
		if len(g.providers[v]) == 0 {
			return v, false
		}
		v = g.providers[v][0]
	}
	return s, false
}
