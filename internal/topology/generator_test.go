package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGenerateValid(t *testing.T) {
	for _, n := range []int{50, 200, 1000} {
		g, err := GenerateDefault(n, 1)
		if err != nil {
			t.Fatalf("generate %d: %v", n, err)
		}
		if g.Len() != n {
			t.Errorf("Len = %d, want %d", g.Len(), n)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("generated graph invalid: %v", err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := GenerateDefault(300, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateDefault(300, 7)
	if err != nil {
		t.Fatal(err)
	}
	la, lb := a.Links(), b.Links()
	if len(la) != len(lb) {
		t.Fatalf("link counts differ: %d vs %d", len(la), len(lb))
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("links differ at %d: %v vs %v", i, la[i], lb[i])
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, err := GenerateDefault(300, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateDefault(300, 2)
	if err != nil {
		t.Fatal(err)
	}
	la, lb := a.Links(), b.Links()
	if len(la) == len(lb) {
		same := true
		for i := range la {
			if la[i] != lb[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical topologies")
		}
	}
}

func TestGenerateTier1Clique(t *testing.T) {
	p := DefaultGenParams(400, 3)
	g, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	t1 := g.Tier1s()
	if len(t1) != p.Tier1 {
		t.Fatalf("tier-1 count = %d, want %d", len(t1), p.Tier1)
	}
	for i, a := range t1 {
		for _, b := range t1[i+1:] {
			if g.Rel(a, b) != RelPeer {
				t.Errorf("tier-1 ASes %d and %d not peered", a, b)
			}
		}
	}
}

func TestGenerateMultihomingRate(t *testing.T) {
	p := DefaultGenParams(2000, 5)
	g, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	multi, nonTier1 := 0, 0
	for a := 0; a < g.Len(); a++ {
		if g.IsTier1(ASN(a)) {
			continue
		}
		nonTier1++
		if g.IsMultihomed(ASN(a)) {
			multi++
		}
	}
	rate := float64(multi) / float64(nonTier1)
	// MultihomeProb is 0.78; allow slack for the MaxProviders cap and
	// small attachment pools early in generation.
	if rate < 0.6 || rate > 0.95 {
		t.Errorf("multihoming rate = %.2f, want ~0.78", rate)
	}
}

func TestGenerateEveryoneReachesTier1(t *testing.T) {
	g, err := GenerateDefault(800, 11)
	if err != nil {
		t.Fatal(err)
	}
	tiers := g.Tiers()
	for a, tier := range tiers {
		if tier == 0 {
			t.Errorf("AS %d cannot reach any tier-1", a)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(GenParams{N: 2, Tier1: 1, MaxProviders: 1}); err == nil {
		t.Error("tiny N accepted")
	}
	if _, err := Generate(GenParams{N: 100, Tier1: 100, MaxProviders: 1}); err == nil {
		t.Error("Tier1 >= N accepted")
	}
	if _, err := Generate(GenParams{N: 100, Tier1: 5, MaxProviders: 0}); err == nil {
		t.Error("MaxProviders 0 accepted")
	}
}

// TestGenerateAcyclicProperty property-checks acyclicity and adjacency
// consistency over random generator parameters.
func TestGenerateAcyclicProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := 50 + int(nRaw%400)
		g, err := GenerateDefault(n, seed)
		if err != nil {
			return false
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}
