package topology

import (
	"fmt"
	"sort"
)

// Gao's AS relationship inference algorithm (L. Gao, "On Inferring
// Autonomous System Relationships in the Internet", IEEE/ACM ToN 2001),
// the algorithm the paper uses to annotate the RouteViews graph.
//
// The algorithm takes a set of observed AS paths and infers, for every
// adjacent AS pair appearing in them, whether the link is
// customer->provider, provider->customer, sibling, or peer:
//
//  1. The degree of each AS (number of distinct neighbors in the paths)
//     approximates its size.
//  2. Each path is assumed valley-free; its highest-degree AS is the "top
//     provider". Links left of the top are customer->provider, links right
//     of it provider->customer.
//  3. Links voted transit in both directions become siblings (we fold
//     siblings into peers, as the STAMP evaluation does not distinguish
//     them).
//  4. A final phase marks as peers the links adjacent to the top provider
//     whose endpoints have comparable degree (ratio below R) and which
//     never carried provider->customer transit for third parties.

// InferredRel is the output relationship for one AS pair.
type InferredRel struct {
	A, B ASN // A < B
	Rel  InferredKind
}

// InferredKind classifies an inferred link.
type InferredKind int8

const (
	// InferredAProviderOfB means A is the provider of B.
	InferredAProviderOfB InferredKind = iota
	// InferredBProviderOfA means B is the provider of A.
	InferredBProviderOfA
	// InferredPeer means the ASes are peers (or siblings).
	InferredPeer
)

// String returns a short name for the inferred kind.
func (k InferredKind) String() string {
	switch k {
	case InferredAProviderOfB:
		return "a-provider-of-b"
	case InferredBProviderOfA:
		return "b-provider-of-a"
	case InferredPeer:
		return "peer"
	}
	return fmt.Sprintf("InferredKind(%d)", int8(k))
}

// GaoParams tunes the inference.
type GaoParams struct {
	// PeerDegreeRatio R: adjacent-to-top links whose endpoint degree ratio
	// is below R are candidate peers. Gao's paper explores R in [1, 60];
	// on the real Internet's heavy-tailed degree distribution large R
	// works well, while the synthetic generator's flatter degrees favor a
	// small R. The default is tuned for generated topologies; pass 60 for
	// RouteViews-scale data.
	PeerDegreeRatio float64
}

// DefaultGaoParams returns the parameterization tuned for generated
// topologies.
func DefaultGaoParams() GaoParams { return GaoParams{PeerDegreeRatio: 3} }

// InferRelationships runs Gao's algorithm over the given AS paths. Paths
// must be loop-free sequences of ASNs; single-AS paths are ignored.
func InferRelationships(paths [][]ASN, p GaoParams) []InferredRel {
	if p.PeerDegreeRatio <= 0 {
		p = DefaultGaoParams()
	}
	// Phase 1: degrees from distinct neighbors.
	neighbors := make(map[ASN]map[ASN]bool)
	addNbr := func(a, b ASN) {
		if neighbors[a] == nil {
			neighbors[a] = make(map[ASN]bool)
		}
		neighbors[a][b] = true
	}
	for _, path := range paths {
		for i := 0; i+1 < len(path); i++ {
			addNbr(path[i], path[i+1])
			addNbr(path[i+1], path[i])
		}
	}
	degree := func(a ASN) int { return len(neighbors[a]) }

	type pair struct{ a, b ASN } // unordered; stored with a < b
	norm := func(a, b ASN) (pair, bool) {
		if a < b {
			return pair{a, b}, false // not swapped
		}
		return pair{b, a}, true // swapped
	}

	// transit[pq] counts votes that pq.a is provider of pq.b (providerOfAB)
	// and that pq.b is provider of pq.a.
	type votes struct {
		aOverB int // a provider of b
		bOverA int // b provider of a
	}
	transit := make(map[pair]*votes)
	vote := func(customer, provider ASN) {
		pq, swapped := norm(customer, provider)
		v := transit[pq]
		if v == nil {
			v = &votes{}
			transit[pq] = v
		}
		if swapped {
			// pq.a == provider
			v.aOverB++
		} else {
			v.bOverA++
		}
	}

	// notPeer marks links seen carrying transit for third parties in the
	// downhill direction beyond position top+1 or before top-1, which
	// disqualifies them from peering.
	notPeer := make(map[pair]bool)
	adjacentToTop := make(map[pair]bool)

	// Phase 2: vote using the top provider of each path.
	for _, path := range paths {
		if len(path) < 2 {
			continue
		}
		top := 0
		for i := 1; i < len(path); i++ {
			if degree(path[i]) > degree(path[top]) {
				top = i
			}
		}
		for i := 0; i+1 < len(path); i++ {
			if i+1 <= top {
				vote(path[i], path[i+1]) // uphill: path[i+1] provider
			} else {
				vote(path[i+1], path[i]) // downhill: path[i] provider
			}
			pq, _ := norm(path[i], path[i+1])
			if i == top || i+1 == top {
				adjacentToTop[pq] = true
			}
			// A link strictly inside the uphill or downhill segment carries
			// transit traffic for the ASes beyond it, so it cannot be a
			// peering link.
			if i+1 < top || i > top {
				notPeer[pq] = true
			}
		}
	}

	// Phase 3+4: classify.
	pairs := make([]pair, 0, len(transit))
	for pq := range transit {
		pairs = append(pairs, pq)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].a != pairs[j].a {
			return pairs[i].a < pairs[j].a
		}
		return pairs[i].b < pairs[j].b
	})

	out := make([]InferredRel, 0, len(pairs))
	for _, pq := range pairs {
		v := transit[pq]
		rel := InferredRel{A: pq.a, B: pq.b}
		switch {
		case v.aOverB > 0 && v.bOverA > 0:
			// Transit in both directions: sibling, folded into peer.
			rel.Rel = InferredPeer
		case v.aOverB > 0:
			rel.Rel = InferredAProviderOfB
		default:
			rel.Rel = InferredBProviderOfA
		}
		// Peering refinement: only links adjacent to a top provider, never
		// carrying third-party transit, with comparable degrees.
		if rel.Rel != InferredPeer && adjacentToTop[pq] && !notPeer[pq] {
			da, db := float64(degree(pq.a)), float64(degree(pq.b))
			if da > 0 && db > 0 {
				ratio := da / db
				if ratio < 1 {
					ratio = 1 / ratio
				}
				if ratio < p.PeerDegreeRatio {
					rel.Rel = InferredPeer
				}
			}
		}
		out = append(out, rel)
	}
	return out
}

// InferenceAccuracy compares inferred relationships against the ground
// truth graph and returns the fraction of links classified correctly,
// counting only links present in both.
func InferenceAccuracy(g *Graph, inferred []InferredRel) float64 {
	if len(inferred) == 0 {
		return 0
	}
	correct, total := 0, 0
	for _, ir := range inferred {
		truth := g.Rel(ir.A, ir.B)
		if truth == RelNone {
			continue
		}
		total++
		switch ir.Rel {
		case InferredAProviderOfB:
			// truth is B's relation from A's perspective: if A is B's
			// provider, then B is A's customer.
			if truth == RelCustomer {
				correct++
			}
		case InferredBProviderOfA:
			if truth == RelProvider {
				correct++
			}
		case InferredPeer:
			if truth == RelPeer {
				correct++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
