package topology

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text serialization follows the CAIDA AS-relationship "serial-1"
// format, so real inferred topologies can be dropped in as a substitute
// for the generator:
//
//	# comment
//	<provider>|<customer>|-1
//	<peer>|<peer>|0
//
// ASNs are renumbered densely on load; WriteASRel emits graph-internal
// ASNs directly.

// WriteASRel writes g in CAIDA AS-relationship format.
func WriteASRel(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# %d ASes, %d links\n", g.Len(), g.EdgeCount()); err != nil {
		return err
	}
	for _, l := range g.Links() {
		var err error
		switch l.Rel {
		case RelProvider: // l.B is provider of l.A
			_, err = fmt.Fprintf(bw, "%d|%d|-1\n", l.B, l.A)
		case RelPeer:
			_, err = fmt.Fprintf(bw, "%d|%d|0\n", l.A, l.B)
		default:
			err = fmt.Errorf("topology: unexpected link relation %v", l.Rel)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadASRel parses a CAIDA AS-relationship file into a Graph. Original
// ASNs are mapped to dense internal ASNs; the returned map translates
// original -> internal.
func ReadASRel(r io.Reader) (*Graph, map[int64]ASN, error) {
	type rawLink struct {
		a, b int64
		rel  int
	}
	var links []rawLink
	ids := make(map[int64]ASN)
	nextID := ASN(0)
	intern := func(x int64) ASN {
		if id, ok := ids[x]; ok {
			return id
		}
		ids[x] = nextID
		nextID++
		return nextID - 1
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "|")
		if len(parts) < 3 {
			return nil, nil, fmt.Errorf("topology: line %d: want a|b|rel, got %q", lineNo, line)
		}
		a, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("topology: line %d: bad ASN %q: %w", lineNo, parts[0], err)
		}
		b, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("topology: line %d: bad ASN %q: %w", lineNo, parts[1], err)
		}
		rel, err := strconv.Atoi(parts[2])
		if err != nil || (rel != -1 && rel != 0) {
			return nil, nil, fmt.Errorf("topology: line %d: bad relationship %q", lineNo, parts[2])
		}
		links = append(links, rawLink{a: a, b: b, rel: rel})
		intern(a)
		intern(b)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("topology: reading AS-rel file: %w", err)
	}

	g := NewGraph(int(nextID))
	for _, l := range links {
		ia, ib := ids[l.a], ids[l.b]
		var err error
		if l.rel == -1 {
			err = g.AddProviderLink(ib, ia) // a provider, b customer
		} else {
			err = g.AddPeerLink(ia, ib)
		}
		if err != nil {
			return nil, nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	return g, ids, nil
}
