package topology

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// The text serialization follows the CAIDA AS-relationship "serial-1"
// format, so real inferred topologies can be dropped in as a substitute
// for the generator:
//
//	# comment
//	<provider>|<customer>|-1
//	<peer>|<peer>|0
//
// ASNs are renumbered densely on load; WriteASRel emits graph-internal
// ASNs directly.

// WriteASRel writes g in CAIDA AS-relationship format, emitting the
// graph-internal ASNs directly.
func WriteASRel(w io.Writer, g *Graph) error {
	return WriteASRelMapped(w, g, func(a ASN) int64 { return int64(a) })
}

// WriteASRelMapped writes g with every ASN translated through orig.
// Re-emitting a loaded snapshot should pass the inverse of ReadASRel's
// renumbering map so the output keeps the snapshot's original ASNs —
// otherwise the file can no longer be correlated with any external
// dataset.
func WriteASRelMapped(w io.Writer, g *Graph, orig func(ASN) int64) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# %d ASes, %d links\n", g.Len(), g.EdgeCount()); err != nil {
		return err
	}
	for _, l := range g.Links() {
		var err error
		switch l.Rel {
		case RelProvider: // l.B is provider of l.A
			_, err = fmt.Fprintf(bw, "%d|%d|-1\n", orig(l.B), orig(l.A))
		case RelPeer:
			_, err = fmt.Fprintf(bw, "%d|%d|0\n", orig(l.A), orig(l.B))
		default:
			err = fmt.Errorf("topology: unexpected link relation %v", l.Rel)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseASRel is the one serial-1 line parser every loader shares
// (ReadASRel here, the CSR ingestion in internal/atlas): it scans r,
// skips comments and blank lines, tokenizes `a|b|rel` (ignoring any
// serial-2-style trailing fields), validates the relationship code —
// -1 provider-customer, 0 peer; sibling and unknown codes fail loudly,
// since the model has no class for them and loading such a file
// silently would misclassify links — and calls emit for every link.
// For rel == -1, a is the provider of b.
func ParseASRel(r io.Reader, emit func(a, b int64, rel int) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "|")
		if len(parts) < 3 {
			return fmt.Errorf("topology: line %d: want a|b|rel, got %q", lineNo, line)
		}
		a, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			return fmt.Errorf("topology: line %d: bad ASN %q: %w", lineNo, parts[0], err)
		}
		b, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return fmt.Errorf("topology: line %d: bad ASN %q: %w", lineNo, parts[1], err)
		}
		rel, err := strconv.Atoi(parts[2])
		switch {
		case err != nil:
			return fmt.Errorf("topology: line %d: bad relationship %q", lineNo, parts[2])
		case rel == 2 || rel == 1:
			// CAIDA's sibling-to-sibling code (and the inverse p2c spelling
			// some derived datasets use).
			return fmt.Errorf("topology: line %d: relationship code %d (sibling/p2c variants are not modeled; serial-1 uses -1 for provider-customer and 0 for peer)", lineNo, rel)
		case rel != -1 && rel != 0:
			return fmt.Errorf("topology: line %d: unknown relationship code %q (want -1 or 0)", lineNo, parts[2])
		}
		if err := emit(a, b, rel); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("topology: reading AS-rel file: %w", err)
	}
	return nil
}

// ReadASRel parses a CAIDA AS-relationship file into a Graph. Original
// ASNs are mapped to dense internal ASNs; the returned map translates
// original -> internal.
func ReadASRel(r io.Reader) (*Graph, map[int64]ASN, error) {
	type rawLink struct {
		a, b int64
		rel  int
	}
	var links []rawLink
	ids := make(map[int64]ASN)
	nextID := ASN(0)
	intern := func(x int64) ASN {
		if id, ok := ids[x]; ok {
			return id
		}
		ids[x] = nextID
		nextID++
		return nextID - 1
	}
	err := ParseASRel(r, func(a, b int64, rel int) error {
		links = append(links, rawLink{a: a, b: b, rel: rel})
		intern(a)
		intern(b)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	g := NewGraph(int(nextID))
	for _, l := range links {
		ia, ib := ids[l.a], ids[l.b]
		var err error
		if l.rel == -1 {
			err = g.AddProviderLink(ib, ia) // a provider, b customer
		} else {
			err = g.AddPeerLink(ia, ib)
		}
		if err != nil {
			return nil, nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	return g, ids, nil
}

// AutoDecompress sniffs r for the gzip magic and returns a transparently
// decompressing reader when present, r itself (buffered) otherwise.
// CAIDA publishes AS-relationship snapshots as .txt.gz; sniffing the
// bytes instead of trusting the file extension means renamed or piped
// snapshots load the same way.
func AutoDecompress(r io.Reader) (io.Reader, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(2)
	if err != nil {
		// Too short to be gzip (including empty input): hand the bytes to
		// the text parser, which produces the real diagnostic.
		return br, nil
	}
	if magic[0] != 0x1f || magic[1] != 0x8b {
		return br, nil
	}
	zr, err := gzip.NewReader(br)
	if err != nil {
		return nil, fmt.Errorf("topology: gzip-compressed input: %w", err)
	}
	return zr, nil
}

// ReadASRelAuto parses a CAIDA AS-relationship file that may be gzip
// compressed, sniffing the format from the bytes.
func ReadASRelAuto(r io.Reader) (*Graph, map[int64]ASN, error) {
	dr, err := AutoDecompress(r)
	if err != nil {
		return nil, nil, err
	}
	return ReadASRel(dr)
}

// OpenASRel loads an AS-relationship snapshot from disk, plain or gzip.
func OpenASRel(path string) (*Graph, map[int64]ASN, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	g, ids, err := ReadASRelAuto(f)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, ids, nil
}
