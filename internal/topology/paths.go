package topology

import "fmt"

// An AS path is a sequence of ASNs from a source AS to a destination AS,
// in forwarding order: path[0] is the source, path[len-1] the destination
// (origin of the prefix). This mirrors how the simulator stores AS paths
// and is the reverse of BGP's wire encoding, which lists the origin last
// from the receiver's point of view.

// PathValleyFree reports whether path is valley-free in g: a sequence of
// zero or more customer-to-provider (uphill) steps, at most one peer step,
// then zero or more provider-to-customer (downhill) steps.
func PathValleyFree(g *Graph, path []ASN) bool {
	_, err := SplitPath(g, path)
	return err == nil
}

// PathSplit describes the valley-free decomposition of an AS path.
// Uphill covers path[:PeakStart] steps that go customer->provider;
// HasPeerStep tells whether a single peer-peer step follows; Downhill
// covers the remaining provider->customer steps. Indexes refer to the
// original path slice.
type PathSplit struct {
	// UphillEnd is the index of the last AS of the uphill portion
	// (0 if the path starts with a peer step or goes straight down).
	UphillEnd int
	// HasPeerStep reports whether the step from UphillEnd crosses a
	// peering link.
	HasPeerStep bool
	// DownhillStart is the index of the first AS of the downhill portion;
	// every subsequent step is provider->customer. If the path ends at its
	// peak, DownhillStart == len(path)-1.
	DownhillStart int
}

// SplitPath decomposes path into its uphill / peer / downhill portions,
// returning an error if the path is not valley-free or not a real walk in
// g. Single-AS paths are trivially valley-free.
func SplitPath(g *Graph, path []ASN) (PathSplit, error) {
	if len(path) == 0 {
		return PathSplit{}, fmt.Errorf("topology: empty path")
	}
	const (
		up = iota
		flat
		down
	)
	phase := up
	split := PathSplit{UphillEnd: 0, DownhillStart: len(path) - 1}
	for i := 0; i+1 < len(path); i++ {
		rel := g.Rel(path[i], path[i+1])
		switch rel {
		case RelNone:
			return PathSplit{}, fmt.Errorf("topology: %d and %d are not neighbors", path[i], path[i+1])
		case RelProvider: // uphill step
			if phase != up {
				return PathSplit{}, fmt.Errorf("topology: uphill step %d->%d after peak", path[i], path[i+1])
			}
			split.UphillEnd = i + 1
		case RelPeer:
			if phase != up {
				return PathSplit{}, fmt.Errorf("topology: second peer/late peer step %d->%d", path[i], path[i+1])
			}
			phase = flat
			split.HasPeerStep = true
			split.UphillEnd = i
			split.DownhillStart = i + 1
		case RelCustomer: // downhill step
			if phase == up {
				split.UphillEnd = i
				split.DownhillStart = i
			}
			if phase == flat {
				split.DownhillStart = i
			}
			phase = down
		}
	}
	if !split.HasPeerStep && phase == up {
		// Pure uphill path: peak is the last AS.
		split.DownhillStart = len(path) - 1
	}
	return split, nil
}

// DownhillNodes returns the ASes of the downhill portion of path,
// including the AS at the top of the downhill segment and the destination.
// For the purposes of STAMP's complementarity property, two paths are
// "downhill node disjoint" when their DownhillNodes sets intersect only in
// the destination (and possibly the source, for degenerate paths).
func DownhillNodes(g *Graph, path []ASN) ([]ASN, error) {
	split, err := SplitPath(g, path)
	if err != nil {
		return nil, err
	}
	return path[split.DownhillStart:], nil
}

// DownhillDisjoint reports whether paths a and b (both ending at the same
// destination) share no AS in their downhill portions other than the
// destination itself and, possibly, a shared source.
func DownhillDisjoint(g *Graph, a, b []ASN) (bool, error) {
	if len(a) == 0 || len(b) == 0 {
		return false, fmt.Errorf("topology: empty path")
	}
	if a[len(a)-1] != b[len(b)-1] {
		return false, fmt.Errorf("topology: paths end at different destinations %d and %d", a[len(a)-1], b[len(b)-1])
	}
	da, err := DownhillNodes(g, a)
	if err != nil {
		return false, err
	}
	db, err := DownhillNodes(g, b)
	if err != nil {
		return false, err
	}
	dest := a[len(a)-1]
	srcA, srcB := a[0], b[0]
	seen := make(map[ASN]bool, len(da))
	for _, v := range da {
		seen[v] = true
	}
	for _, v := range db {
		if !seen[v] {
			continue
		}
		if v == dest {
			continue
		}
		if v == srcA && v == srcB {
			continue
		}
		return false, nil
	}
	return true, nil
}

// PathContainsLink reports whether the path traverses the undirected link
// {a, b} in either direction.
func PathContainsLink(path []ASN, a, b ASN) bool {
	for i := 0; i+1 < len(path); i++ {
		if (path[i] == a && path[i+1] == b) || (path[i] == b && path[i+1] == a) {
			return true
		}
	}
	return false
}

// PathContainsAS reports whether v appears anywhere on the path.
func PathContainsAS(path []ASN, v ASN) bool {
	for _, x := range path {
		if x == v {
			return true
		}
	}
	return false
}
