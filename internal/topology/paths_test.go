package topology

import "testing"

// diamond builds:
//
//	  0   1      (tier-1 peers)
//	 / \ / \
//	2   3   4    (mid: 2->0; 3->0,1; 4->1)
//	 \  |  /
//	  \ | /
//	    5        (5 -> 2,3,4)
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph(6)
	mustP := func(c, p ASN) {
		t.Helper()
		if err := g.AddProviderLink(c, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddPeerLink(0, 1); err != nil {
		t.Fatal(err)
	}
	mustP(2, 0)
	mustP(3, 0)
	mustP(3, 1)
	mustP(4, 1)
	mustP(5, 2)
	mustP(5, 3)
	mustP(5, 4)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSplitPathUpPeerDown(t *testing.T) {
	g := diamond(t)
	// 5 -> 2 -> 0 (peak) peer 1 -> 4: up, up, peer, down.
	path := []ASN{5, 2, 0, 1, 4}
	split, err := SplitPath(g, path)
	if err != nil {
		t.Fatalf("SplitPath: %v", err)
	}
	if !split.HasPeerStep {
		t.Error("peer step not detected")
	}
	if split.UphillEnd != 2 {
		t.Errorf("UphillEnd = %d, want 2", split.UphillEnd)
	}
	if split.DownhillStart != 3 {
		t.Errorf("DownhillStart = %d, want 3", split.DownhillStart)
	}
}

func TestSplitPathPureUphill(t *testing.T) {
	g := diamond(t)
	path := []ASN{5, 3, 1}
	split, err := SplitPath(g, path)
	if err != nil {
		t.Fatalf("SplitPath: %v", err)
	}
	if split.HasPeerStep {
		t.Error("unexpected peer step")
	}
	if split.DownhillStart != 2 {
		t.Errorf("DownhillStart = %d, want 2 (peak only)", split.DownhillStart)
	}
}

func TestSplitPathPureDownhill(t *testing.T) {
	g := diamond(t)
	path := []ASN{0, 3, 5}
	split, err := SplitPath(g, path)
	if err != nil {
		t.Fatalf("SplitPath: %v", err)
	}
	if split.DownhillStart != 0 {
		t.Errorf("DownhillStart = %d, want 0", split.DownhillStart)
	}
}

func TestSplitPathRejectsValley(t *testing.T) {
	g := diamond(t)
	// 2 -> 5 (down) -> 3 (up): a valley.
	if _, err := SplitPath(g, []ASN{2, 5, 3}); err == nil {
		t.Error("valley path accepted")
	}
	// Peer step after downhill: 0 -> 3 (down) ... no peer below; use
	// 1 -> 3? 3 is customer of 1, then 3 -> 0 is uphill: also invalid.
	if _, err := SplitPath(g, []ASN{1, 3, 0}); err == nil {
		t.Error("down-then-up path accepted")
	}
}

func TestSplitPathRejectsNonWalk(t *testing.T) {
	g := diamond(t)
	if _, err := SplitPath(g, []ASN{5, 0}); err == nil {
		t.Error("non-adjacent hop accepted")
	}
	if _, err := SplitPath(g, nil); err == nil {
		t.Error("empty path accepted")
	}
}

func TestPathValleyFree(t *testing.T) {
	g := diamond(t)
	if !PathValleyFree(g, []ASN{5, 2, 0, 1, 4}) {
		t.Error("valid path rejected")
	}
	if PathValleyFree(g, []ASN{2, 5, 3}) {
		t.Error("valley accepted")
	}
}

func TestDownhillNodes(t *testing.T) {
	g := diamond(t)
	down, err := DownhillNodes(g, []ASN{5, 2, 0, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := []ASN{1, 4}
	if len(down) != len(want) {
		t.Fatalf("DownhillNodes = %v, want %v", down, want)
	}
	for i := range want {
		if down[i] != want[i] {
			t.Fatalf("DownhillNodes = %v, want %v", down, want)
		}
	}
}

func TestDownhillDisjoint(t *testing.T) {
	g := diamond(t)
	// Both paths end at 5: one descends via 2, the other via 4.
	a := []ASN{0, 2, 5}
	b := []ASN{1, 4, 5}
	ok, err := DownhillDisjoint(g, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("disjoint downhill paths reported overlapping")
	}
	// Same intermediate node 3.
	c := []ASN{0, 3, 5}
	d := []ASN{1, 3, 5}
	ok, err = DownhillDisjoint(g, c, d)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("overlapping downhill paths reported disjoint")
	}
}

func TestDownhillDisjointErrors(t *testing.T) {
	g := diamond(t)
	if _, err := DownhillDisjoint(g, []ASN{0, 2, 5}, []ASN{1, 4}); err == nil {
		t.Error("different destinations accepted")
	}
	if _, err := DownhillDisjoint(g, nil, []ASN{1, 4}); err == nil {
		t.Error("empty path accepted")
	}
}

func TestPathContains(t *testing.T) {
	path := []ASN{5, 3, 1}
	if !PathContainsLink(path, 3, 5) {
		t.Error("link 5-3 (reversed) not found")
	}
	if PathContainsLink(path, 5, 1) {
		t.Error("non-adjacent pair reported as link")
	}
	if !PathContainsAS(path, 3) {
		t.Error("AS 3 not found")
	}
	if PathContainsAS(path, 9) {
		t.Error("AS 9 falsely found")
	}
}
