package topology

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestASRelRoundTrip(t *testing.T) {
	g, err := GenerateDefault(300, 17)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteASRel(&buf, g); err != nil {
		t.Fatalf("WriteASRel: %v", err)
	}
	g2, ids, err := ReadASRel(&buf)
	if err != nil {
		t.Fatalf("ReadASRel: %v", err)
	}
	if g2.Len() != g.Len() {
		t.Fatalf("round trip changed AS count: %d -> %d", g.Len(), g2.Len())
	}
	// Relationships must survive modulo renumbering.
	for _, l := range g.Links() {
		a, b := ids[int64(l.A)], ids[int64(l.B)]
		want := g.Rel(l.A, l.B)
		if got := g2.Rel(a, b); got != want {
			t.Fatalf("link %v: rel %v -> %v after round trip", l, want, got)
		}
	}
}

func TestReadASRelFormat(t *testing.T) {
	in := `# comment line
174|3356|0
3356|65001|-1
174|65002|-1
`
	g, ids, err := ReadASRel(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadASRel: %v", err)
	}
	if g.Len() != 4 {
		t.Fatalf("Len = %d, want 4", g.Len())
	}
	// 174 and 3356 peer; 3356 provider of 65001.
	if g.Rel(ids[174], ids[3356]) != RelPeer {
		t.Error("peer relationship lost")
	}
	if g.Rel(ids[65001], ids[3356]) != RelProvider {
		t.Error("provider relationship lost")
	}
}

func TestReadASRelErrors(t *testing.T) {
	cases := []struct{ in, wantErr string }{
		{"1|2", "want a|b|rel"},             // too few fields
		{"x|2|-1", "bad ASN"},               // bad ASN
		{"1|y|0", "bad ASN"},                // bad ASN
		{"1|2|7", "unknown relationship"},   // unrecognized code
		{"1|2|zz", "bad relationship"},      // non-numeric code
		{"1|2|2", "sibling"},                // CAIDA sibling code
		{"1|2|1", "sibling"},                // inverse p2c spelling
		{"1|2|-1\n2|3|-1\n3|1|-1", "cycle"}, // provider cycle
		{"1|2|-1\n1|2|0", "duplicate"},      // conflicting claims
		{"5|5|0", "self"},                   // self peering
	}
	for _, tc := range cases {
		_, _, err := ReadASRel(strings.NewReader(tc.in))
		if err == nil {
			t.Errorf("input %q accepted", tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("input %q: error %q does not mention %q", tc.in, err, tc.wantErr)
		}
	}
}

// caidaSerial1Fixture mimics a real serial-1 snapshot: comment header,
// sparse original ASNs, and a serial-2-style trailing source field
// that readers must ignore.
const caidaSerial1Fixture = `# inferred AS relationships (serial-1)
# provider|customer|-1, peer|peer|0
174|3356|0
174|64512|-1
3356|64512|-1
3356|65001|-1
64512|65002|-1|bgp
65001|65002|-1
`

// TestReadASRelAutoGzip: the gzip-compressed fixture reads identically
// to the plain one — the format is sniffed from the bytes, so renamed
// CAIDA .txt.gz snapshots load without ceremony.
func TestReadASRelAutoGzip(t *testing.T) {
	plain, plainIDs, err := ReadASRelAuto(strings.NewReader(caidaSerial1Fixture))
	if err != nil {
		t.Fatalf("plain: %v", err)
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write([]byte(caidaSerial1Fixture)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	zg, ids, err := ReadASRelAuto(&buf)
	if err != nil {
		t.Fatalf("gzip: %v", err)
	}
	if zg.Len() != plain.Len() || zg.EdgeCount() != plain.EdgeCount() {
		t.Fatalf("gzip read %d/%d, plain %d/%d", zg.Len(), zg.EdgeCount(), plain.Len(), plain.EdgeCount())
	}
	if zg.Rel(ids[174], ids[3356]) != RelPeer || zg.Rel(ids[64512], ids[174]) != RelProvider {
		t.Error("relationships lost in gzip round trip")
	}
	if !zg.IsMultihomed(ids[64512]) || !zg.IsMultihomed(ids[65002]) {
		t.Error("multihoming lost in gzip round trip")
	}
	_ = plainIDs
}

// TestOpenASRel: the disk loader handles plain and gzip files and
// reports the path on failure.
func TestOpenASRel(t *testing.T) {
	dir := t.TempDir()
	plainPath := filepath.Join(dir, "snapshot.txt")
	if err := os.WriteFile(plainPath, []byte(caidaSerial1Fixture), 0o644); err != nil {
		t.Fatal(err)
	}
	gzPath := filepath.Join(dir, "snapshot.txt.gz")
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write([]byte(caidaSerial1Fixture)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(gzPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{plainPath, gzPath} {
		g, _, err := OpenASRel(path)
		if err != nil {
			t.Fatalf("OpenASRel(%s): %v", path, err)
		}
		if g.Len() != 5 {
			t.Fatalf("%s: Len = %d, want 5", path, g.Len())
		}
	}
	if _, _, err := OpenASRel(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file opened without error")
	}
	// A corrupt gzip body fails with a diagnostic naming the file.
	badPath := filepath.Join(dir, "corrupt.gz")
	if err := os.WriteFile(badPath, buf.Bytes()[:20], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenASRel(badPath); err == nil {
		t.Error("corrupt gzip opened without error")
	} else if !strings.Contains(err.Error(), "corrupt.gz") {
		t.Errorf("error %q does not name the file", err)
	}
}

// TestWriteReadGzipRoundTrip: a generated graph written, compressed,
// and re-read survives structurally — the full ingestion path an
// operator exercises with `stamp topo | gzip`.
func TestWriteReadGzipRoundTrip(t *testing.T) {
	g, err := GenerateDefault(200, 11)
	if err != nil {
		t.Fatal(err)
	}
	var text bytes.Buffer
	if err := WriteASRel(&text, g); err != nil {
		t.Fatal(err)
	}
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	if _, err := zw.Write(text.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	g2, ids, err := ReadASRelAuto(&zbuf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Len() != g.Len() || g2.EdgeCount() != g.EdgeCount() {
		t.Fatalf("gzip round trip changed shape: %d/%d -> %d/%d",
			g.Len(), g.EdgeCount(), g2.Len(), g2.EdgeCount())
	}
	for _, l := range g.Links() {
		if got, want := g2.Rel(ids[int64(l.A)], ids[int64(l.B)]), g.Rel(l.A, l.B); got != want {
			t.Fatalf("link %v: rel %v -> %v after gzip round trip", l, want, got)
		}
	}
}

func TestReadASRelEmpty(t *testing.T) {
	g, _, err := ReadASRel(strings.NewReader("# nothing\n"))
	if err != nil {
		t.Fatalf("empty file rejected: %v", err)
	}
	if g.Len() != 0 {
		t.Errorf("Len = %d, want 0", g.Len())
	}
}
