package topology

import (
	"bytes"
	"strings"
	"testing"
)

func TestASRelRoundTrip(t *testing.T) {
	g, err := GenerateDefault(300, 17)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteASRel(&buf, g); err != nil {
		t.Fatalf("WriteASRel: %v", err)
	}
	g2, ids, err := ReadASRel(&buf)
	if err != nil {
		t.Fatalf("ReadASRel: %v", err)
	}
	if g2.Len() != g.Len() {
		t.Fatalf("round trip changed AS count: %d -> %d", g.Len(), g2.Len())
	}
	// Relationships must survive modulo renumbering.
	for _, l := range g.Links() {
		a, b := ids[int64(l.A)], ids[int64(l.B)]
		want := g.Rel(l.A, l.B)
		if got := g2.Rel(a, b); got != want {
			t.Fatalf("link %v: rel %v -> %v after round trip", l, want, got)
		}
	}
}

func TestReadASRelFormat(t *testing.T) {
	in := `# comment line
174|3356|0
3356|65001|-1
174|65002|-1
`
	g, ids, err := ReadASRel(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadASRel: %v", err)
	}
	if g.Len() != 4 {
		t.Fatalf("Len = %d, want 4", g.Len())
	}
	// 174 and 3356 peer; 3356 provider of 65001.
	if g.Rel(ids[174], ids[3356]) != RelPeer {
		t.Error("peer relationship lost")
	}
	if g.Rel(ids[65001], ids[3356]) != RelProvider {
		t.Error("provider relationship lost")
	}
}

func TestReadASRelErrors(t *testing.T) {
	cases := []string{
		"1|2",            // too few fields
		"x|2|-1",         // bad ASN
		"1|y|0",          // bad ASN
		"1|2|7",          // bad rel
		"1|2|-1\n2|1|-1", // provider cycle
	}
	for _, in := range cases {
		if _, _, err := ReadASRel(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestReadASRelEmpty(t *testing.T) {
	g, _, err := ReadASRel(strings.NewReader("# nothing\n"))
	if err != nil {
		t.Fatalf("empty file rejected: %v", err)
	}
	if g.Len() != 0 {
		t.Errorf("Len = %d, want 0", g.Len())
	}
}
