package topology

import (
	"testing"
)

// line builds the chain 0 <- 1 <- ... <- n-1 where i+1's provider is i.
func line(t *testing.T, n int) *Graph {
	t.Helper()
	g := NewGraph(n)
	for i := 1; i < n; i++ {
		if err := g.AddProviderLink(ASN(i), ASN(i-1)); err != nil {
			t.Fatalf("AddProviderLink: %v", err)
		}
	}
	return g
}

func TestAddProviderLink(t *testing.T) {
	g := NewGraph(3)
	if err := g.AddProviderLink(1, 0); err != nil {
		t.Fatalf("add: %v", err)
	}
	if got := g.Rel(1, 0); got != RelProvider {
		t.Errorf("Rel(1,0) = %v, want provider", got)
	}
	if got := g.Rel(0, 1); got != RelCustomer {
		t.Errorf("Rel(0,1) = %v, want customer", got)
	}
	if got := g.Rel(0, 2); got != RelNone {
		t.Errorf("Rel(0,2) = %v, want none", got)
	}
}

func TestAddLinkErrors(t *testing.T) {
	g := NewGraph(3)
	if err := g.AddProviderLink(0, 0); err == nil {
		t.Error("self provider link accepted")
	}
	if err := g.AddPeerLink(1, 1); err == nil {
		t.Error("self peer link accepted")
	}
	if err := g.AddProviderLink(0, 5); err == nil {
		t.Error("out-of-range link accepted")
	}
	if err := g.AddProviderLink(1, 0); err != nil {
		t.Fatalf("add: %v", err)
	}
	if err := g.AddProviderLink(1, 0); err == nil {
		t.Error("duplicate link accepted")
	}
	if err := g.AddPeerLink(0, 1); err == nil {
		t.Error("peer link over existing provider link accepted")
	}
}

func TestPeerLinkSymmetry(t *testing.T) {
	g := NewGraph(2)
	if err := g.AddPeerLink(0, 1); err != nil {
		t.Fatalf("add: %v", err)
	}
	if g.Rel(0, 1) != RelPeer || g.Rel(1, 0) != RelPeer {
		t.Error("peer link not symmetric")
	}
}

func TestRelInvert(t *testing.T) {
	cases := map[Rel]Rel{
		RelCustomer: RelProvider,
		RelProvider: RelCustomer,
		RelPeer:     RelPeer,
		RelNone:     RelNone,
	}
	for in, want := range cases {
		if got := in.Invert(); got != want {
			t.Errorf("%v.Invert() = %v, want %v", in, got, want)
		}
	}
}

func TestValidateDetectsCycle(t *testing.T) {
	g := NewGraph(3)
	for _, l := range [][2]ASN{{0, 1}, {1, 2}, {2, 0}} {
		if err := g.AddProviderLink(l[0], l[1]); err != nil {
			t.Fatalf("add: %v", err)
		}
	}
	if err := g.Validate(); err == nil {
		t.Error("provider cycle not detected")
	}
}

func TestValidateAcceptsDAG(t *testing.T) {
	g := line(t, 10)
	if err := g.Validate(); err != nil {
		t.Errorf("valid chain rejected: %v", err)
	}
}

func TestTiers(t *testing.T) {
	// 0 is tier-1, 1 and 2 customers of 0, 3 customer of 2.
	g := NewGraph(4)
	mustLink := func(c, p ASN) {
		t.Helper()
		if err := g.AddProviderLink(c, p); err != nil {
			t.Fatal(err)
		}
	}
	mustLink(1, 0)
	mustLink(2, 0)
	mustLink(3, 2)
	tiers := g.Tiers()
	want := []int{1, 2, 2, 3}
	for i := range want {
		if tiers[i] != want[i] {
			t.Errorf("tier[%d] = %d, want %d", i, tiers[i], want[i])
		}
	}
}

func TestTier1s(t *testing.T) {
	g := line(t, 4)
	t1 := g.Tier1s()
	if len(t1) != 1 || t1[0] != 0 {
		t.Errorf("Tier1s = %v, want [0]", t1)
	}
}

func TestIsMultihomed(t *testing.T) {
	g := NewGraph(4)
	for _, p := range []ASN{0, 1} {
		if err := g.AddProviderLink(3, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddProviderLink(2, 0); err != nil {
		t.Fatal(err)
	}
	if !g.IsMultihomed(3) {
		t.Error("AS 3 with two providers not multihomed")
	}
	if g.IsMultihomed(2) {
		t.Error("AS 2 with one provider reported multihomed")
	}
}

func TestEdgeCountAndLinks(t *testing.T) {
	g := NewGraph(4)
	if err := g.AddProviderLink(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.AddPeerLink(2, 3); err != nil {
		t.Fatal(err)
	}
	if got := g.EdgeCount(); got != 2 {
		t.Errorf("EdgeCount = %d, want 2", got)
	}
	links := g.Links()
	if len(links) != 2 {
		t.Fatalf("Links = %v, want 2 entries", links)
	}
	if links[0].Rel != RelProvider || links[0].A != 1 || links[0].B != 0 {
		t.Errorf("first link = %+v, want 1->0 provider", links[0])
	}
	if links[1].Rel != RelPeer {
		t.Errorf("second link = %+v, want peer", links[1])
	}
}

func TestClone(t *testing.T) {
	g := line(t, 5)
	c := g.Clone()
	if err := c.AddProviderLink(0, 4); err == nil {
		// Creates a cycle in the clone only.
		if c.Validate() == nil {
			t.Error("clone validate should fail after adding cycle")
		}
	}
	if err := g.Validate(); err != nil {
		t.Errorf("original affected by clone mutation: %v", err)
	}
}

func TestFirstMultihomedAncestor(t *testing.T) {
	// 4 -> 3 -> {0, 1}; 2 -> 0. AS 4 single-homed, 3 multihomed.
	g := NewGraph(5)
	mustLink := func(c, p ASN) {
		t.Helper()
		if err := g.AddProviderLink(c, p); err != nil {
			t.Fatal(err)
		}
	}
	mustLink(3, 0)
	mustLink(3, 1)
	mustLink(4, 3)
	mustLink(2, 0)
	if m, ok := g.FirstMultihomedAncestor(4); !ok || m != 3 {
		t.Errorf("ancestor(4) = %d,%v; want 3,true", m, ok)
	}
	if m, ok := g.FirstMultihomedAncestor(3); !ok || m != 3 {
		t.Errorf("ancestor(3) = %d,%v; want 3,true (itself)", m, ok)
	}
	if _, ok := g.FirstMultihomedAncestor(2); ok {
		t.Error("ancestor(2) should not exist (chain ends at single-homed tier-1)")
	}
}

func TestNeighborsAndDegree(t *testing.T) {
	g := NewGraph(4)
	if err := g.AddProviderLink(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.AddPeerLink(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddProviderLink(3, 1); err != nil {
		t.Fatal(err)
	}
	var nbrs []ASN
	nbrs = g.Neighbors(nbrs, 1)
	if len(nbrs) != 3 {
		t.Errorf("Neighbors(1) = %v, want 3 entries", nbrs)
	}
	if g.Degree(1) != 3 {
		t.Errorf("Degree(1) = %d, want 3", g.Degree(1))
	}
}
