package topology

import (
	"math/rand"
	"testing"
)

// genPaths synthesizes observed AS paths from ground truth g by computing
// stable routes toward a sample of destinations, mimicking what a route
// collector sees.
func genPaths(g *Graph, dests int, seed int64) [][]ASN {
	rng := rand.New(rand.NewSource(seed))
	var paths [][]ASN
	for i := 0; i < dests; i++ {
		dest := ASN(rng.Intn(g.Len()))
		routes := StaticRoutes(g, dest)
		for v := 0; v < g.Len(); v++ {
			if len(routes[v]) == 0 {
				continue
			}
			full := append([]ASN{ASN(v)}, routes[v]...)
			paths = append(paths, full)
		}
	}
	return paths
}

func TestGaoInferenceChain(t *testing.T) {
	// Simple chain: 2 -> 1 -> 0 with degrees making 0 the top provider.
	// Give 0 extra neighbors so its degree dominates.
	g := NewGraph(5)
	mustP := func(c, p ASN) {
		t.Helper()
		if err := g.AddProviderLink(c, p); err != nil {
			t.Fatal(err)
		}
	}
	mustP(1, 0)
	mustP(2, 1)
	mustP(3, 0)
	mustP(4, 0)
	paths := [][]ASN{
		{2, 1, 0},
		{2, 1, 0, 3},
		{4, 0, 3},
	}
	// The chain's degrees are nearly uniform, so a tight peering ratio is
	// needed to avoid misreading top-adjacent provider links as peering.
	inferred := InferRelationships(paths, GaoParams{PeerDegreeRatio: 1.2})
	acc := InferenceAccuracy(g, inferred)
	if acc < 0.99 {
		t.Errorf("accuracy = %.2f on trivial chain, want 1.0 (inferred: %v)", acc, inferred)
	}
}

func TestGaoInferenceSynthetic(t *testing.T) {
	g, err := GenerateDefault(400, 31)
	if err != nil {
		t.Fatal(err)
	}
	paths := genPaths(g, 25, 1)
	inferred := InferRelationships(paths, DefaultGaoParams())
	if len(inferred) == 0 {
		t.Fatal("no relationships inferred")
	}
	acc := InferenceAccuracy(g, inferred)
	// Gao's paper reports >90% accuracy on provider-customer links.
	if acc < 0.88 {
		t.Errorf("accuracy = %.2f, want >= 0.88", acc)
	}
	t.Logf("inferred %d links with accuracy %.3f", len(inferred), acc)
}

func TestGaoInferencePeersDetected(t *testing.T) {
	g, err := GenerateDefault(400, 33)
	if err != nil {
		t.Fatal(err)
	}
	paths := genPaths(g, 25, 2)
	inferred := InferRelationships(paths, DefaultGaoParams())
	peers := 0
	for _, ir := range inferred {
		if ir.Rel == InferredPeer {
			peers++
		}
	}
	if peers == 0 {
		t.Error("no peering links inferred despite tier-1 clique traffic")
	}
}

func TestGaoInferenceEmpty(t *testing.T) {
	if out := InferRelationships(nil, DefaultGaoParams()); len(out) != 0 {
		t.Errorf("inferred %d relationships from no paths", len(out))
	}
	if acc := InferenceAccuracy(NewGraph(1), nil); acc != 0 {
		t.Errorf("accuracy of empty inference = %v, want 0", acc)
	}
}

func TestGaoInferenceDeterministic(t *testing.T) {
	g, err := GenerateDefault(200, 35)
	if err != nil {
		t.Fatal(err)
	}
	paths := genPaths(g, 10, 3)
	a := InferRelationships(paths, DefaultGaoParams())
	b := InferRelationships(paths, DefaultGaoParams())
	if len(a) != len(b) {
		t.Fatalf("non-deterministic output size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
