package topology

import (
	"fmt"
	"math/rand"
)

// GenParams controls the synthetic Internet-like topology generator.
//
// The generator substitutes for the RouteViews-derived AS graph used in the
// paper's evaluation. It reproduces the structural properties the paper's
// results depend on: a clique of provider-free tier-1 ASes, an acyclic
// customer-provider hierarchy, heavy-tailed provider degrees via
// preferential attachment, widespread multihoming, and peering links
// between transit ASes of similar size.
type GenParams struct {
	// N is the total number of ASes.
	N int
	// Tier1 is the number of provider-free top ASes, fully peer-meshed.
	Tier1 int
	// TransitFrac is the fraction of non-tier-1 ASes that are transit
	// (mid-tier) providers; the remainder are stub ASes.
	TransitFrac float64
	// MultihomeProb is the probability that an AS has more than one
	// provider.
	MultihomeProb float64
	// MaxProviders caps the provider count of a single AS.
	MaxProviders int
	// ExtraProviderProb is the probability, applied repeatedly, of adding
	// one more provider beyond the second to a multi-homed AS (geometric
	// tail).
	ExtraProviderProb float64
	// PeerDegreeRatio is the maximum degree ratio between two transit ASes
	// for a peering link to be considered.
	PeerDegreeRatio float64
	// PeerTrials is how many peering attempts each transit AS makes.
	PeerTrials int
	// Seed seeds the deterministic generator RNG.
	Seed int64
}

// DefaultGenParams returns parameters that yield an Internet-like topology
// of n ASes with multihoming and peering densities tuned so that the
// disjointness probability Φ lands in the paper's reported regime
// (mean ≈ 0.9).
func DefaultGenParams(n int, seed int64) GenParams {
	t := n / 400
	if t < 5 {
		t = 5
	}
	if t > 16 {
		t = 16
	}
	return GenParams{
		N:                 n,
		Tier1:             t,
		TransitFrac:       0.16,
		MultihomeProb:     0.78,
		MaxProviders:      6,
		ExtraProviderProb: 0.35,
		PeerDegreeRatio:   4.0,
		PeerTrials:        2,
		Seed:              seed,
	}
}

// Generate builds a synthetic AS topology. ASes 0..Tier1-1 are the tier-1
// clique; transit ASes follow; stub ASes come last. Provider links always
// point from a later-created AS to an earlier-created one, so the
// customer-provider hierarchy is acyclic by construction.
func Generate(p GenParams) (*Graph, error) {
	if p.N < 3 {
		return nil, fmt.Errorf("topology: need at least 3 ASes, got %d", p.N)
	}
	if p.Tier1 < 2 || p.Tier1 >= p.N {
		return nil, fmt.Errorf("topology: tier-1 count %d out of range for %d ASes", p.Tier1, p.N)
	}
	if p.MaxProviders < 1 {
		return nil, fmt.Errorf("topology: MaxProviders must be >= 1")
	}
	rng := rand.New(rand.NewSource(p.Seed))
	g := NewGraph(p.N)

	// Tier-1 clique.
	for a := 0; a < p.Tier1; a++ {
		for b := a + 1; b < p.Tier1; b++ {
			if err := g.AddPeerLink(ASN(a), ASN(b)); err != nil {
				return nil, err
			}
		}
	}

	nTransit := int(float64(p.N-p.Tier1) * p.TransitFrac)
	firstStub := p.Tier1 + nTransit

	// attach wires a new AS to providers chosen from ASes [0, limit) by
	// degree-biased (preferential) sampling.
	attach := func(a ASN, limit int) {
		k := 1
		if rng.Float64() < p.MultihomeProb {
			k = 2
			for k < p.MaxProviders && rng.Float64() < p.ExtraProviderProb {
				k++
			}
		}
		if k > limit {
			k = limit
		}
		chosen := make(map[ASN]bool, k)
		order := make([]ASN, 0, k) // insertion order: map iteration would
		// leak per-process hash randomness into the provider list order
		// and break simulation reproducibility.
		for len(chosen) < k {
			prov := preferentialPick(rng, g, limit, chosen)
			if !chosen[prov] {
				chosen[prov] = true
				order = append(order, prov)
			}
		}
		for _, prov := range order {
			// Error impossible: prov < a and not duplicate.
			if err := g.AddProviderLink(a, prov); err != nil {
				panic(err)
			}
		}
	}

	// Transit ASes attach to tier-1s and earlier transit ASes.
	for a := p.Tier1; a < firstStub; a++ {
		attach(ASN(a), a)
	}
	// Stub ASes attach to transit ASes and tier-1s only.
	for a := firstStub; a < p.N; a++ {
		attach(ASN(a), firstStub)
	}

	// Peering among transit ASes of comparable degree.
	addTransitPeering(rng, g, p, firstStub)

	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("topology: generator produced invalid graph: %w", err)
	}
	return g, nil
}

// preferentialPick samples an AS from [0, limit) with probability
// proportional to degree+1, skipping ASes already in excl.
func preferentialPick(rng *rand.Rand, g *Graph, limit int, excl map[ASN]bool) ASN {
	total := 0
	for a := 0; a < limit; a++ {
		if !excl[ASN(a)] {
			total += g.Degree(ASN(a)) + 1
		}
	}
	x := rng.Intn(total)
	for a := 0; a < limit; a++ {
		if excl[ASN(a)] {
			continue
		}
		x -= g.Degree(ASN(a)) + 1
		if x < 0 {
			return ASN(a)
		}
	}
	// Unreachable: total covers all non-excluded weights.
	panic("topology: preferentialPick fell off the end")
}

// addTransitPeering links transit ASes of similar degree with peer edges.
func addTransitPeering(rng *rand.Rand, g *Graph, p GenParams, firstStub int) {
	for a := p.Tier1; a < firstStub; a++ {
		for t := 0; t < p.PeerTrials; t++ {
			b := ASN(p.Tier1 + rng.Intn(firstStub-p.Tier1))
			if b == ASN(a) || g.Rel(ASN(a), b) != RelNone {
				continue
			}
			da, db := float64(g.Degree(ASN(a))+1), float64(g.Degree(b)+1)
			ratio := da / db
			if ratio < 1 {
				ratio = 1 / ratio
			}
			if ratio > p.PeerDegreeRatio {
				continue
			}
			// Avoid peerings that would let an AS reach its own customer
			// cone "sideways" in a way real peering economics forbid: only
			// peer ASes with no provider/customer path conflict. A simple
			// and sufficient guard is already enforced by Rel check above;
			// customer-provider acyclicity is untouched by peer links.
			if err := g.AddPeerLink(ASN(a), b); err != nil {
				panic(err)
			}
		}
	}
}

// GenerateDefault is shorthand for Generate(DefaultGenParams(n, seed)).
func GenerateDefault(n int, seed int64) (*Graph, error) {
	return Generate(DefaultGenParams(n, seed))
}
