package topology

import "testing"

func TestStaticRoutesDiamond(t *testing.T) {
	g := diamond(t)
	routes := StaticRoutes(g, 5)
	// 2 reaches 5 directly (customer route), path [5].
	if got := routes[2]; len(got) != 1 || got[0] != 5 {
		t.Errorf("routes[2] = %v, want [5]", got)
	}
	// 0 has customer routes via 2 and 3 (equal length): lowest next hop 2.
	if got := routes[0]; len(got) != 2 || got[0] != 2 {
		t.Errorf("routes[0] = %v, want [2 5]", got)
	}
	// Destination: empty non-nil path.
	if routes[5] == nil || len(routes[5]) != 0 {
		t.Errorf("routes[5] = %v, want []", routes[5])
	}
}

func TestStaticRoutesPreferCustomer(t *testing.T) {
	// 0 -- 1 peers; 2 customer of both; dest 3 customer of 2.
	// 1's route to 3: customer route via 2 (not the shorter... both 2).
	// Add a peer shortcut: 4 peer of... Construct a case where a peer
	// route is shorter but the customer route must win.
	g := NewGraph(5)
	mustP := func(c, p ASN) {
		t.Helper()
		if err := g.AddProviderLink(c, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddPeerLink(0, 1); err != nil {
		t.Fatal(err)
	}
	mustP(2, 0) // 2 customer of 0
	mustP(3, 2) // dest 3 customer of 2
	mustP(3, 1) // dest 3 also customer of 1
	// 0's options: customer route [2 3] (len 2) or peer route via 1:
	// [1 3] (len 2). Customer must win even at equal length; make the
	// customer route longer to prove preference:
	mustP(4, 2) // pad: nothing.
	routes := StaticRoutes(g, 3)
	r0 := routes[0]
	if len(r0) == 0 || r0[0] != 2 {
		t.Errorf("routes[0] = %v, want customer route via 2", r0)
	}
}

func TestStaticRoutesProviderFallback(t *testing.T) {
	// 1 is customer of 0; 2 is customer of 0; dest is 1. 2 has no
	// customer/peer route: must use provider route via 0.
	g := NewGraph(3)
	if err := g.AddProviderLink(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.AddProviderLink(2, 0); err != nil {
		t.Fatal(err)
	}
	routes := StaticRoutes(g, 1)
	r2 := routes[2]
	if len(r2) != 2 || r2[0] != 0 || r2[1] != 1 {
		t.Errorf("routes[2] = %v, want [0 1]", r2)
	}
}

func TestStaticRoutesValleyFree(t *testing.T) {
	g, err := GenerateDefault(500, 21)
	if err != nil {
		t.Fatal(err)
	}
	for _, dest := range []ASN{3, 77, 310} {
		routes := StaticRoutes(g, dest)
		for v := 0; v < g.Len(); v++ {
			path := routes[v]
			if path == nil {
				t.Errorf("dest %d: AS %d unreachable", dest, v)
				continue
			}
			if ASN(v) == dest {
				continue
			}
			full := append([]ASN{ASN(v)}, path...)
			if !PathValleyFree(g, full) {
				t.Errorf("dest %d: path %v from %d not valley-free", dest, full, v)
			}
			if full[len(full)-1] != dest {
				t.Errorf("dest %d: path %v does not end at dest", dest, full)
			}
		}
	}
}

func TestStaticRoutesLoopFree(t *testing.T) {
	g, err := GenerateDefault(500, 22)
	if err != nil {
		t.Fatal(err)
	}
	routes := StaticRoutes(g, 42)
	for v := 0; v < g.Len(); v++ {
		seen := map[ASN]bool{ASN(v): true}
		for _, hop := range routes[v] {
			if seen[hop] {
				t.Fatalf("loop in path of %d: %v", v, routes[v])
			}
			seen[hop] = true
		}
	}
}
