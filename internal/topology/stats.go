package topology

import (
	"fmt"
	"io"
	"sort"
)

// WithoutLinks returns a copy of g with the given undirected links
// removed. Unknown links are ignored. The copy is re-validated by
// construction (removing links cannot create provider cycles).
func (g *Graph) WithoutLinks(links [][2]ASN) *Graph {
	dead := make(map[[2]ASN]bool, len(links))
	for _, l := range links {
		a, b := l[0], l[1]
		if a > b {
			a, b = b, a
		}
		dead[[2]ASN{a, b}] = true
	}
	isDead := func(a, b ASN) bool {
		if a > b {
			a, b = b, a
		}
		return dead[[2]ASN{a, b}]
	}
	c := NewGraph(g.n)
	for a := 0; a < g.n; a++ {
		for _, p := range g.providers[a] {
			if !isDead(ASN(a), p) {
				c.providers[a] = append(c.providers[a], p)
				c.customers[p] = append(c.customers[p], ASN(a))
			}
		}
		for _, p := range g.peers[a] {
			if ASN(a) < p && !isDead(ASN(a), p) {
				c.peers[a] = append(c.peers[a], p)
				c.peers[p] = append(c.peers[p], ASN(a))
			}
		}
	}
	return c
}

// DegreeBucket is one power-of-two cell of a degree distribution: the
// number of ASes whose total degree falls in [Lo, Hi].
type DegreeBucket struct {
	Lo, Hi int
	Count  int
}

// Stats summarizes structural properties of a topology — the sanity
// check `stamp topo -stats` prints so an ingested snapshot can be
// inspected (degree distribution, tier sizes, link classes) before an
// experiment is spent on it.
type Stats struct {
	ASes         int
	Links        int
	CPLinks      int // customer-provider links
	PeerLinks    int // settlement-free peerings
	Tier1s       int
	MaxTier      int
	TierSizes    []int // TierSizes[i] = ASes at tier i+1
	Multihomed   int
	MeanDegree   float64
	MaxDegree    int
	DegreeMin    int
	DegreeMedian int
	DegreeP90    int
	DegreeHist   []DegreeBucket // power-of-two buckets over total degree
	StubASes     int            // ASes with no customers
	MeanProvider float64
}

// ComputeStats gathers Stats for g.
func ComputeStats(g *Graph) Stats {
	s := Stats{ASes: g.Len(), Links: g.EdgeCount()}
	tiers := g.Tiers()
	degrees := make([]int, g.Len())
	totalDeg, totalProv := 0, 0
	for a := 0; a < g.Len(); a++ {
		v := ASN(a)
		d := g.Degree(v)
		degrees[a] = d
		totalDeg += d
		totalProv += len(g.Providers(v))
		s.CPLinks += len(g.Providers(v))
		s.PeerLinks += len(g.Peers(v))
		if g.IsTier1(v) {
			s.Tier1s++
		}
		if tiers[a] > s.MaxTier {
			s.MaxTier = tiers[a]
		}
		if g.IsMultihomed(v) {
			s.Multihomed++
		}
		if len(g.Customers(v)) == 0 {
			s.StubASes++
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	s.PeerLinks /= 2
	s.TierSizes = make([]int, s.MaxTier)
	for _, t := range tiers {
		if t >= 1 {
			s.TierSizes[t-1]++
		}
	}
	if g.Len() > 0 {
		s.MeanDegree = float64(totalDeg) / float64(g.Len())
	}
	// Mean providers over the ASes that have any (tier-1s by definition
	// have none).
	if owners := g.Len() - s.Tier1s; owners > 0 {
		s.MeanProvider = float64(totalProv) / float64(owners)
	}
	sort.Ints(degrees)
	if len(degrees) > 0 {
		s.DegreeMin = degrees[0]
		s.DegreeMedian = degrees[len(degrees)/2]
		s.DegreeP90 = degrees[int(0.9*float64(len(degrees)-1))]
	}
	// Power-of-two degree buckets: [0], [1], [2,3], [4,7], …
	s.DegreeHist = append(s.DegreeHist, DegreeBucket{Lo: 0, Hi: 0})
	for lo := 1; lo <= s.MaxDegree; lo *= 2 {
		s.DegreeHist = append(s.DegreeHist, DegreeBucket{Lo: lo, Hi: lo*2 - 1})
	}
	for _, d := range degrees {
		for i := range s.DegreeHist {
			if b := &s.DegreeHist[i]; d >= b.Lo && d <= b.Hi {
				b.Count++
				break
			}
		}
	}
	return s
}

// Print renders the stats as the aligned text block the CLI emits.
func (s Stats) Print(w io.Writer) {
	fmt.Fprintf(w, "ASes %d, links %d (%d customer-provider, %d peer)\n",
		s.ASes, s.Links, s.CPLinks, s.PeerLinks)
	fmt.Fprintf(w, "multihomed %d (%.1f%%), stubs %d, mean degree %.2f, mean providers %.2f\n",
		s.Multihomed, pct(s.Multihomed, s.ASes), s.StubASes, s.MeanDegree, s.MeanProvider)
	fmt.Fprint(w, "tiers:")
	for i, c := range s.TierSizes {
		fmt.Fprintf(w, " tier-%d=%d", i+1, c)
	}
	fmt.Fprintf(w, " (max tier %d)\n", s.MaxTier)
	fmt.Fprintf(w, "degree: min %d, median %d, p90 %d, max %d\n",
		s.DegreeMin, s.DegreeMedian, s.DegreeP90, s.MaxDegree)
	for _, b := range s.DegreeHist {
		if b.Count == 0 {
			continue
		}
		label := fmt.Sprintf("%d", b.Lo)
		if b.Hi > b.Lo {
			label = fmt.Sprintf("%d-%d", b.Lo, b.Hi)
		}
		fmt.Fprintf(w, "  degree %-9s %7d ASes (%5.1f%%)\n", label, b.Count, pct(b.Count, s.ASes))
	}
}

func pct(part, whole int) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// CustomerCone returns the set of ASes in v's customer cone (v itself
// included): everyone reachable by repeatedly descending provider-to-
// customer links. Cone sizes drive which ASes count as "large" in
// Internet economics.
func CustomerCone(g *Graph, v ASN) []ASN {
	seen := make(map[ASN]bool)
	var out []ASN
	stack := []ASN{v}
	seen[v] = true
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, x)
		for _, c := range g.Customers(x) {
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
