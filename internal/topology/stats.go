package topology

import "sort"

// WithoutLinks returns a copy of g with the given undirected links
// removed. Unknown links are ignored. The copy is re-validated by
// construction (removing links cannot create provider cycles).
func (g *Graph) WithoutLinks(links [][2]ASN) *Graph {
	dead := make(map[[2]ASN]bool, len(links))
	for _, l := range links {
		a, b := l[0], l[1]
		if a > b {
			a, b = b, a
		}
		dead[[2]ASN{a, b}] = true
	}
	isDead := func(a, b ASN) bool {
		if a > b {
			a, b = b, a
		}
		return dead[[2]ASN{a, b}]
	}
	c := NewGraph(g.n)
	for a := 0; a < g.n; a++ {
		for _, p := range g.providers[a] {
			if !isDead(ASN(a), p) {
				c.providers[a] = append(c.providers[a], p)
				c.customers[p] = append(c.customers[p], ASN(a))
			}
		}
		for _, p := range g.peers[a] {
			if ASN(a) < p && !isDead(ASN(a), p) {
				c.peers[a] = append(c.peers[a], p)
				c.peers[p] = append(c.peers[p], ASN(a))
			}
		}
	}
	return c
}

// Stats summarizes structural properties of a topology.
type Stats struct {
	ASes         int
	Links        int
	PeerLinks    int
	Tier1s       int
	MaxTier      int
	Multihomed   int
	MeanDegree   float64
	MaxDegree    int
	DegreeP90    int
	StubASes     int // ASes with no customers
	MeanProvider float64
}

// ComputeStats gathers Stats for g.
func ComputeStats(g *Graph) Stats {
	s := Stats{ASes: g.Len(), Links: g.EdgeCount()}
	tiers := g.Tiers()
	degrees := make([]int, g.Len())
	totalDeg, totalProv := 0, 0
	for a := 0; a < g.Len(); a++ {
		v := ASN(a)
		d := g.Degree(v)
		degrees[a] = d
		totalDeg += d
		totalProv += len(g.Providers(v))
		s.PeerLinks += len(g.Peers(v))
		if g.IsTier1(v) {
			s.Tier1s++
		}
		if tiers[a] > s.MaxTier {
			s.MaxTier = tiers[a]
		}
		if g.IsMultihomed(v) {
			s.Multihomed++
		}
		if len(g.Customers(v)) == 0 {
			s.StubASes++
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	s.PeerLinks /= 2
	if g.Len() > 0 {
		s.MeanDegree = float64(totalDeg) / float64(g.Len())
		s.MeanProvider = float64(totalProv) / float64(g.Len()-s.Tier1s+1)
	}
	sort.Ints(degrees)
	if len(degrees) > 0 {
		s.DegreeP90 = degrees[int(0.9*float64(len(degrees)-1))]
	}
	return s
}

// CustomerCone returns the set of ASes in v's customer cone (v itself
// included): everyone reachable by repeatedly descending provider-to-
// customer links. Cone sizes drive which ASes count as "large" in
// Internet economics.
func CustomerCone(g *Graph, v ASN) []ASN {
	seen := make(map[ASN]bool)
	var out []ASN
	stack := []ASN{v}
	seen[v] = true
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, x)
		for _, c := range g.Customers(x) {
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
