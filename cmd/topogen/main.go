// Command topogen generates a synthetic Internet-like AS topology and
// writes it in CAIDA AS-relationship format.
//
// Usage:
//
//	topogen -n 3000 -seed 7 -o topo.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"stamp/internal/topology"
)

func main() {
	var (
		n        = flag.Int("n", 1000, "number of ASes")
		seed     = flag.Int64("seed", 1, "generator seed")
		out      = flag.String("o", "", "output file (default stdout)")
		tier1    = flag.Int("tier1", 0, "tier-1 count (0 = auto)")
		multi    = flag.Float64("multihome", 0, "multihoming probability (0 = default)")
		validate = flag.Bool("stats", false, "print topology statistics to stderr")
	)
	flag.Parse()

	p := topology.DefaultGenParams(*n, *seed)
	if *tier1 > 0 {
		p.Tier1 = *tier1
	}
	if *multi > 0 {
		p.MultihomeProb = *multi
	}
	g, err := topology.Generate(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "topogen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := topology.WriteASRel(w, g); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}

	if *validate {
		tiers := g.Tiers()
		maxTier := 0
		multihomed := 0
		for a := 0; a < g.Len(); a++ {
			if tiers[a] > maxTier {
				maxTier = tiers[a]
			}
			if g.IsMultihomed(topology.ASN(a)) {
				multihomed++
			}
		}
		fmt.Fprintf(os.Stderr, "ASes: %d, links: %d, tier-1s: %d, max tier: %d, multihomed: %.1f%%\n",
			g.Len(), g.EdgeCount(), len(g.Tier1s()), maxTier,
			100*float64(multihomed)/float64(g.Len()))
	}
}
