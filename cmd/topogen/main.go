// Command topogen is a deprecated shim over `stamp topo`. This binary
// keeps the old flag surface working for one release and will then be
// removed.
package main

import (
	"context"
	"os"

	"stamp/internal/cli"
)

func main() {
	os.Exit(cli.LegacyTopogen(context.Background(), os.Args[1:], os.Stdout, os.Stderr))
}
