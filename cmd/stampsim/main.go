// Command stampsim regenerates the paper's experiments on a synthetic or
// loaded AS topology.
//
// Usage:
//
//	stampsim -exp figure2 -n 3000 -trials 30
//	stampsim -exp all -n 1000 -trials 10
//	stampsim -exp figure1 -topo asrel.txt
//
// Experiments: figure1, figure1-intelligent, figure2, figure3a, figure3b,
// node-failure, partial, overhead, convergence, ablation-lock,
// ablation-mrai, all.
package main

import (
	"flag"
	"fmt"
	"os"

	"stamp/internal/disjoint"
	"stamp/internal/experiments"
	"stamp/internal/topology"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment to run")
		n      = flag.Int("n", 1000, "topology size (ASes) when generating")
		seed   = flag.Int64("seed", 1, "random seed")
		trials = flag.Int("trials", 10, "failure trials per scenario")
		topo   = flag.String("topo", "", "CAIDA AS-rel file to load instead of generating")
	)
	flag.Parse()

	g, err := loadTopology(*topo, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stampsim:", err)
		os.Exit(1)
	}
	fmt.Printf("topology: %d ASes, %d links, %d tier-1s\n\n", g.Len(), g.EdgeCount(), len(g.Tier1s()))

	run := func(name string) error {
		switch name {
		case "figure1":
			experiments.RunFigure1(g, disjoint.DefaultPhiOpts()).Print(os.Stdout)
		case "figure1-intelligent":
			experiments.RunFigure1Intelligent(g, disjoint.DefaultPhiOpts()).Print(os.Stdout)
		case "figure2":
			return transient(g, experiments.ScenarioSingleLink, *trials, *seed)
		case "figure3a":
			return transient(g, experiments.ScenarioTwoLinksApart, *trials, *seed)
		case "figure3b":
			return transient(g, experiments.ScenarioTwoLinksShared, *trials, *seed)
		case "node-failure":
			return transient(g, experiments.ScenarioNodeFailure, *trials, *seed)
		case "partial":
			experiments.RunPartialDeployment(g).Print(os.Stdout)
		case "overhead":
			res, err := experiments.RunTransient(experiments.TransientOpts{
				G: g, Trials: *trials, Seed: *seed, Scenario: experiments.ScenarioSingleLink,
				Protocols: []experiments.Protocol{experiments.ProtoBGP, experiments.ProtoSTAMP},
			})
			if err != nil {
				return err
			}
			o, err := res.Overhead()
			if err != nil {
				return err
			}
			o.Print(os.Stdout)
		case "convergence":
			res, err := experiments.RunTransient(experiments.TransientOpts{
				G: g, Trials: *trials, Seed: *seed, Scenario: experiments.ScenarioSingleLink,
				Protocols: []experiments.Protocol{experiments.ProtoBGP, experiments.ProtoSTAMP},
			})
			if err != nil {
				return err
			}
			c, err := res.Convergence()
			if err != nil {
				return err
			}
			c.Print(os.Stdout)
		case "ablation-lock":
			dest := firstMultihomed(g)
			r, err := experiments.RunLockAblation(g, dest, *seed)
			if err != nil {
				return err
			}
			r.Print(os.Stdout)
		case "ablation-mrai":
			r, err := experiments.RunMRAIAblation(g, *trials, *seed)
			if err != nil {
				return err
			}
			r.Print(os.Stdout)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{
			"figure1", "figure1-intelligent", "figure2", "figure3a",
			"figure3b", "partial", "overhead", "convergence",
			"ablation-lock", "ablation-mrai",
		}
	}
	for _, name := range names {
		if err := run(name); err != nil {
			fmt.Fprintln(os.Stderr, "stampsim:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func transient(g *topology.Graph, sc experiments.Scenario, trials int, seed int64) error {
	res, err := experiments.RunTransient(experiments.TransientOpts{
		G: g, Trials: trials, Seed: seed, Scenario: sc,
	})
	if err != nil {
		return err
	}
	res.Print(os.Stdout)
	return nil
}

func loadTopology(path string, n int, seed int64) (*topology.Graph, error) {
	if path == "" {
		return topology.GenerateDefault(n, seed)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, _, err := topology.ReadASRel(f)
	return g, err
}

func firstMultihomed(g *topology.Graph) topology.ASN {
	for a := 0; a < g.Len(); a++ {
		if g.IsMultihomed(topology.ASN(a)) {
			return topology.ASN(a)
		}
	}
	return 0
}
