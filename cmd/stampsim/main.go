// Command stampsim is a deprecated shim over `stamp run`: the paper's
// experiments now live in the internal/lab registry behind the unified
// cmd/stamp CLI. This binary keeps the old -exp flag surface working
// for one release and will then be removed.
package main

import (
	"os"

	"stamp/internal/cli"
)

func main() {
	os.Exit(cli.LegacySim(cli.SignalContext(), os.Args[1:], os.Stdout, os.Stderr))
}
