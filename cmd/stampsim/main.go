// Command stampsim regenerates the paper's experiments on a synthetic or
// loaded AS topology, sharding trials across a worker pool. Results are
// bit-identical for any -workers value; see internal/runner.
//
// Usage:
//
//	stampsim -exp figure2 -n 3000 -trials 30 -workers 8
//	stampsim -exp all -n 1000 -trials 10
//	stampsim -exp figure1 -topo asrel.txt
//	stampsim -exp transient -scenario two-links-shared -trials 50 -json
//	stampsim -exp sweep -topo-seeds 1,2,3 -trials 20 -progress
//
// Experiments: figure1, figure1-intelligent, figure2, figure3a, figure3b,
// node-failure, transient, sweep, partial, overhead, convergence,
// ablation-lock, ablation-mrai, all.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"stamp/internal/disjoint"
	"stamp/internal/experiments"
	"stamp/internal/runner"
	"stamp/internal/scenario"
	"stamp/internal/topology"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment to run")
		n         = flag.Int("n", 1000, "topology size (ASes) when generating")
		seed      = flag.Int64("seed", 1, "master random seed")
		trials    = flag.Int("trials", 10, "failure trials per scenario")
		topo      = flag.String("topo", "", "CAIDA AS-rel file to load instead of generating")
		workers   = flag.Int("workers", 0, "worker pool size (0 = one per CPU)")
		scenario  = flag.String("scenario", "", "failure scenario for -exp transient/sweep: single-link, two-links-apart, two-links-shared, node-failure")
		jsonOut   = flag.Bool("json", false, "emit results as JSON on stdout")
		progress  = flag.Bool("progress", false, "report trial progress on stderr")
		topoSeeds = flag.String("topo-seeds", "1,2,3", "comma-separated topology seeds for -exp sweep")
	)
	flag.Parse()

	out := &output{json: *jsonOut}
	// The sweep builds its own topologies from -topo-seeds, so loading is
	// deferred until an experiment actually needs the -topo/-n graph (and
	// the banner describes only a topology that was really used).
	var g *topology.Graph
	getG := func() (*topology.Graph, error) {
		if g != nil {
			return g, nil
		}
		var err error
		if g, err = loadTopology(*topo, *n, *seed); err != nil {
			return nil, err
		}
		if !*jsonOut {
			fmt.Printf("topology: %d ASes, %d links, %d tier-1s\n\n", g.Len(), g.EdgeCount(), len(g.Tier1s()))
		}
		return g, nil
	}

	prog := func(done, total int) {}
	if *progress {
		// The runner counts shards (trials × protocols for transient
		// experiments), not -trials.
		prog = func(done, total int) { fmt.Fprintf(os.Stderr, "\r%d/%d shards", done, total) }
	}
	progDone := func() {
		if *progress {
			fmt.Fprintln(os.Stderr)
		}
	}

	transientOpts := func(g *topology.Graph, sc experiments.Scenario, protos []experiments.Protocol) experiments.TransientOpts {
		return experiments.TransientOpts{
			G: g, Trials: *trials, Seed: *seed, Scenario: sc,
			Protocols: protos, Workers: *workers, Progress: prog,
		}
	}
	transient := func(name string, sc experiments.Scenario) error {
		g, err := getG()
		if err != nil {
			return err
		}
		res, err := experiments.RunTransient(transientOpts(g, sc, nil))
		progDone()
		if err != nil {
			return err
		}
		out.add(name, res)
		return nil
	}

	run := func(name string) error {
		// Every case except sweep runs on the -topo/-n graph; sweep is
		// handled before the graph is touched.
		switch name {
		case "sweep":
			if *topo != "" {
				return fmt.Errorf("-exp sweep generates its own topologies from -n and -topo-seeds; -topo is not supported")
			}
			seeds, err := parseSeeds(*topoSeeds)
			if err != nil {
				return err
			}
			var scenarios []experiments.Scenario
			if *scenario != "" {
				sc, err := parseScenario(*scenario)
				if err != nil {
					return err
				}
				scenarios = []experiments.Scenario{sc}
			}
			res, err := experiments.RunSweep(experiments.SweepOpts{
				N: *n, TopoSeeds: seeds, Scenarios: scenarios,
				Trials: *trials, Seed: *seed, Workers: *workers, Progress: prog,
			})
			progDone()
			if err != nil {
				return err
			}
			out.add(name, res)
			return nil
		}
		g, err := getG()
		if err != nil {
			return err
		}
		switch name {
		case "figure1", "figure1-intelligent":
			res, err := experiments.RunFigure1With(g, disjoint.DefaultPhiOpts(),
				name == "figure1-intelligent", runner.Options{Workers: *workers, Progress: prog})
			progDone()
			if err != nil {
				return err
			}
			out.add(name, res)
		case "figure2":
			return transient(name, experiments.ScenarioSingleLink)
		case "figure3a":
			return transient(name, experiments.ScenarioTwoLinksApart)
		case "figure3b":
			return transient(name, experiments.ScenarioTwoLinksShared)
		case "node-failure":
			return transient(name, experiments.ScenarioNodeFailure)
		case "transient":
			sc, err := parseScenario(*scenario)
			if err != nil {
				return err
			}
			return transient(name, sc)
		case "partial":
			out.add(name, experiments.RunPartialDeployment(g))
		case "overhead":
			res, err := experiments.RunTransient(transientOpts(g, experiments.ScenarioSingleLink,
				[]experiments.Protocol{experiments.ProtoBGP, experiments.ProtoSTAMP}))
			progDone()
			if err != nil {
				return err
			}
			o, err := res.Overhead()
			if err != nil {
				return err
			}
			out.add(name, o)
		case "convergence":
			res, err := experiments.RunTransient(transientOpts(g, experiments.ScenarioSingleLink,
				[]experiments.Protocol{experiments.ProtoBGP, experiments.ProtoSTAMP}))
			progDone()
			if err != nil {
				return err
			}
			c, err := res.Convergence()
			if err != nil {
				return err
			}
			out.add(name, c)
		case "ablation-lock":
			r, err := experiments.RunLockAblation(g, firstMultihomed(g), *seed, *workers)
			if err != nil {
				return err
			}
			out.add(name, r)
		case "ablation-mrai":
			r, err := experiments.RunMRAIAblation(g, *trials, *seed, *workers)
			if err != nil {
				return err
			}
			out.add(name, r)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{
			"figure1", "figure1-intelligent", "figure2", "figure3a",
			"figure3b", "partial", "overhead", "convergence",
			"ablation-lock", "ablation-mrai",
		}
	}
	for _, name := range names {
		if err := run(name); err != nil {
			// Emit whatever completed before failing, so long multi-
			// experiment runs don't lose finished results.
			if ferr := out.flush(); ferr != nil {
				fmt.Fprintln(os.Stderr, "stampsim:", ferr)
			}
			fail(err)
		}
	}
	if err := out.flush(); err != nil {
		fail(err)
	}
}

// output collects named results and renders them as text sections or one
// JSON document.
type output struct {
	json    bool
	results []namedResult
}

type namedResult struct {
	Experiment string `json:"experiment"`
	Result     any    `json:"result"`
}

// printer is what every experiment result implements for text output.
type printer interface{ Print(w io.Writer) }

// add records a result. In text mode it prints immediately, so a failure
// in a later experiment never discards completed output; JSON mode
// buffers until flush because the document is one array.
func (o *output) add(name string, res any) {
	if !o.json {
		if p, ok := res.(printer); ok {
			p.Print(os.Stdout)
		} else {
			fmt.Printf("%+v\n", res)
		}
		fmt.Println()
		return
	}
	o.results = append(o.results, namedResult{Experiment: name, Result: res})
}

func (o *output) flush() error {
	if !o.json || len(o.results) == 0 {
		return nil
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(o.results)
}

func parseScenario(s string) (experiments.Scenario, error) {
	if s == "" {
		return experiments.ScenarioSingleLink, nil
	}
	return scenario.ParseKind(s)
}

func parseSeeds(s string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad topo seed %q: %w", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no topology seeds given")
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "stampsim:", err)
	os.Exit(1)
}

func loadTopology(path string, n int, seed int64) (*topology.Graph, error) {
	if path == "" {
		return topology.GenerateDefault(n, seed)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, _, err := topology.ReadASRel(f)
	return g, err
}

func firstMultihomed(g *topology.Graph) topology.ASN {
	for a := 0; a < g.Len(); a++ {
		if g.IsMultihomed(topology.ASN(a)) {
			return topology.ASN(a)
		}
	}
	return 0
}
