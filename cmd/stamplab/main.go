// Command stamplab is a deprecated shim over `stamp lab`: the live
// emulation now runs as the lab registry's emu-converge experiment
// behind the unified cmd/stamp CLI. This binary keeps the old flag
// surface working for one release and will then be removed.
package main

import (
	"os"

	"stamp/internal/cli"
)

func main() {
	os.Exit(cli.LegacyLab(cli.SignalContext(), os.Args[1:], os.Stdout, os.Stderr))
}
