// Command stamplab boots an entire AS topology as live STAMP speakers —
// one red/blue wire-protocol session pair per link — injects a failure
// scenario in wall-clock time, waits for the fleet to go quiescent, and
// differentially validates the live routing tables against the
// discrete-event simulator on the same topology and scenario. Any
// divergence exits nonzero: it means the wire, session, or concurrency
// layers disagree with the protocol logic.
//
// Usage:
//
//	stamplab -n 200 -transport pipe -scenario link-failure
//	stamplab -n 500 -scenario link-flap -workers 16 -json
//	stamplab -n 50 -transport tcp -scenario node-failure
//	stamplab -topo asrel.txt -scenario prefix-withdraw
//
// Scenarios: link-failure (alias single-link), two-links-apart,
// two-links-shared, node-failure, link-flap, prefix-withdraw.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"stamp/internal/bgp"
	"stamp/internal/emu"
	"stamp/internal/metrics"
	"stamp/internal/scenario"
	"stamp/internal/topology"
)

func main() {
	var (
		n         = flag.Int("n", 200, "topology size (ASes) when generating")
		seed      = flag.Int64("seed", 1, "master seed (topology when generating, workload always)")
		topo      = flag.String("topo", "", "CAIDA AS-rel file to load instead of generating")
		scName    = flag.String("scenario", "link-failure", "failure scenario: "+strings.Join(scenario.Names(), ", "))
		transport = flag.String("transport", "pipe", "session transport: pipe (in-memory, mux) or tcp (loopback)")
		workers   = flag.Int("workers", 0, "boot worker pool size (0 = default)")
		diff      = flag.Bool("diff", true, "differentially validate live tables against the simulator")
		jsonOut   = flag.Bool("json", false, "emit results as JSON on stdout")
		quiet     = flag.Duration("quiet", 0, "quiescence window override (0 = default)")
		timeout   = flag.Duration("timeout", 0, "convergence timeout override (0 = default)")
	)
	flag.Parse()

	g, err := loadTopology(*topo, *n, *seed)
	if err != nil {
		fail(err)
	}
	script, err := scenario.Named(*scName, g, *seed)
	if err != nil {
		fail(err)
	}

	res, err := emu.Run(emu.Options{
		Graph:           g,
		Transport:       *transport,
		Workers:         *workers,
		QuietWindow:     *quiet,
		ConvergeTimeout: *timeout,
	}, script)
	if err != nil {
		fail(err)
	}

	var divs []emu.Divergence
	if *diff {
		simT, err := emu.SimTables(g, script, emu.ReferenceParams(), *seed)
		if err != nil {
			fail(err)
		}
		divs = simT.Diff(res.Tables)
	}

	if *jsonOut {
		emitJSON(*scName, *transport, script, res, divs, *diff)
	} else {
		emitText(*scName, *transport, script, res, divs, *diff)
	}
	if len(divs) > 0 {
		os.Exit(1)
	}
}

// report is the JSON document stamplab emits (one per run; CI archives
// these as BENCH_*.json artifacts).
type report struct {
	Scenario   string           `json:"scenario"`
	Transport  string           `json:"transport"`
	Dest       topology.ASN     `json:"dest"`
	Stats      emu.Stats        `json:"stats"`
	BootMs     float64          `json:"boot_ms"`
	InitialMs  float64          `json:"initial_convergence_ms"`
	ScenarioMs float64          `json:"scenario_convergence_ms"`
	RedRoutes  int              `json:"red_routes"`
	BlueRoutes int              `json:"blue_routes"`
	ConvCDF    *cdfSummary      `json:"scenario_convergence_cdf,omitempty"`
	DiffRan    bool             `json:"diff_ran"`
	Diverged   []emu.Divergence `json:"divergences"`
}

// cdfSummary condenses the per-AS wall-clock convergence CDF.
type cdfSummary struct {
	ASesChanged int     `json:"ases_changed"`
	MeanMs      float64 `json:"mean_ms"`
	P50Ms       float64 `json:"p50_ms"`
	P90Ms       float64 `json:"p90_ms"`
	MaxMs       float64 `json:"max_ms"`
}

func summarize(c *metrics.CDF) *cdfSummary {
	if c == nil || c.Len() == 0 {
		return nil
	}
	return &cdfSummary{
		ASesChanged: c.Len(),
		MeanMs:      1e3 * c.Mean(),
		P50Ms:       1e3 * c.Quantile(0.5),
		P90Ms:       1e3 * c.Quantile(0.9),
		MaxMs:       1e3 * c.Quantile(1),
	}
}

func buildReport(scName, transport string, script scenario.Script, res *emu.Result, divs []emu.Divergence, diffRan bool) report {
	if divs == nil {
		divs = []emu.Divergence{}
	}
	return report{
		Scenario:   scName,
		Transport:  transport,
		Dest:       script.Dest,
		Stats:      res.Stats,
		BootMs:     float64(res.Boot) / 1e6,
		InitialMs:  float64(res.InitialConvergence) / 1e6,
		ScenarioMs: float64(res.ScenarioConvergence) / 1e6,
		RedRoutes:  res.Tables.Routes(bgp.ColorRed),
		BlueRoutes: res.Tables.Routes(bgp.ColorBlue),
		ConvCDF:    summarize(res.ConvCDF),
		DiffRan:    diffRan,
		Diverged:   divs,
	}
}

func emitJSON(scName, transport string, script scenario.Script, res *emu.Result, divs []emu.Divergence, diffRan bool) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(buildReport(scName, transport, script, res, divs, diffRan)); err != nil {
		fail(err)
	}
}

func emitText(scName, transport string, script scenario.Script, res *emu.Result, divs []emu.Divergence, diffRan bool) {
	r := buildReport(scName, transport, script, res, divs, diffRan)
	fmt.Printf("stamplab — %d ASes, %d links, %d live sessions over %s\n",
		r.Stats.ASes, r.Stats.Links, r.Stats.Sessions, r.Transport)
	fmt.Printf("scenario %q at destination AS%d\n\n", r.Scenario, r.Dest)
	fmt.Printf("  boot (wire + establish all)  %8.1f ms\n", r.BootMs)
	fmt.Printf("  initial convergence          %8.1f ms\n", r.InitialMs)
	fmt.Printf("  scenario convergence         %8.1f ms\n", r.ScenarioMs)
	fmt.Printf("  updates sent                 %8d   (dropped in severed transit: %d)\n",
		r.Stats.Updates, r.Stats.Dropped)
	fmt.Printf("  final routes                 %8d red, %d blue\n", r.RedRoutes, r.BlueRoutes)
	if r.ConvCDF != nil {
		fmt.Printf("  per-AS convergence           mean %.1f ms, p50 %.1f ms, p90 %.1f ms, max %.1f ms (%d ASes changed)\n",
			r.ConvCDF.MeanMs, r.ConvCDF.P50Ms, r.ConvCDF.P90Ms, r.ConvCDF.MaxMs, r.ConvCDF.ASesChanged)
	}
	if !diffRan {
		fmt.Println("\ndifferential validation skipped (-diff=false)")
		return
	}
	if len(divs) == 0 {
		fmt.Println("\ndifferential validation: live tables == simulator tables (0 divergences)")
		return
	}
	fmt.Printf("\ndifferential validation FAILED: %d divergences\n", len(divs))
	for _, d := range divs {
		fmt.Printf("  %v\n", d)
	}
}

func loadTopology(path string, n int, seed int64) (*topology.Graph, error) {
	if path == "" {
		return topology.GenerateDefault(n, seed)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, _, err := topology.ReadASRel(f)
	return g, err
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "stamplab:", err)
	os.Exit(1)
}
