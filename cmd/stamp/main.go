// Command stamp is the single operator surface for the whole repository:
// every experiment in the lab registry, the live emulation, the
// packet-level workload driver, the topology generator, and the
// wire-protocol daemon, behind one flag/JSON/progress/exit-code layer.
//
// Usage:
//
//	stamp list
//	stamp run figure2 -n 3000 -trials 30 -workers 8
//	stamp run transient -scenario link-flap -trials 20 -json
//	stamp run loss -backend emu -n 100 -scenario node-failure
//	stamp run emu-converge -n 500 -scenario link-flap -json
//	stamp lab -n 200 -transport tcp
//	stamp flood -n 400 -scenario two-links-shared -trials 8
//	stamp topo -n 3000 -seed 7 -o topo.txt
//	stamp daemon -as 64512 -color blue -listen :1790
//
// Exit codes: 0 success, 1 failure (including any sim-vs-live
// divergence), 2 usage. Ctrl-C cancels in-flight experiment trials
// promptly.
package main

import (
	"os"

	"stamp/internal/cli"
)

func main() {
	os.Exit(cli.Main(cli.SignalContext(), os.Args[1:], os.Stdout, os.Stderr))
}
