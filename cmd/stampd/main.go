// Command stampd runs one live STAMP routing process (one color) speaking
// the wire protocol over TCP.
//
// A full STAMP router runs two stampd processes, red and blue, on
// distinct ports — exactly the paper's deployment story.
//
// Usage:
//
//	stampd -as 64512 -id 1 -color blue -listen :1790 \
//	       -peer 127.0.0.1:1791,64513,provider \
//	       -originate 198.51.100.0/24 -lock 64513
//
// Peers are addr,AS,rel triples where rel is one of customer, peer,
// provider (the remote's role from our perspective).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"stamp/internal/netd"
	"stamp/internal/topology"
	"stamp/internal/wire"
)

type peerFlag struct {
	addr string
	as   uint16
	rel  topology.Rel
}

func main() {
	var (
		asn       = flag.Uint("as", 0, "local AS number (required)")
		id        = flag.Uint("id", 1, "router ID")
		color     = flag.String("color", "red", "process color: red or blue")
		listen    = flag.String("listen", "", "listen address (optional)")
		originate = flag.String("originate", "", "prefix to originate (optional)")
		lock      = flag.Uint("lock", 0, "provider AS receiving the locked blue announcement")
		accept    = flag.String("accept", "", "inbound peers: AS,rel pairs separated by ';'")
	)
	var peers []peerFlag
	flag.Func("peer", "outbound peer as addr,AS,rel (repeatable)", func(v string) error {
		p, err := parsePeer(v)
		if err != nil {
			return err
		}
		peers = append(peers, p)
		return nil
	})
	flag.Parse()

	if *asn == 0 || *asn > 65535 {
		fmt.Fprintln(os.Stderr, "stampd: -as is required (1..65535)")
		os.Exit(2)
	}
	var colorByte byte
	switch *color {
	case "red":
		colorByte = 0
	case "blue":
		colorByte = 1
	default:
		fmt.Fprintln(os.Stderr, "stampd: -color must be red or blue")
		os.Exit(2)
	}

	sp := netd.NewSpeaker(netd.SpeakerConfig{
		AS:       uint16(*asn),
		RouterID: uint32(*id),
		Color:    colorByte,
		Logf:     log.Printf,
	})
	sp.OnChange = func(p wire.Prefix, best *wire.Attrs) {
		if best == nil {
			log.Printf("route to %v lost", p)
			return
		}
		log.Printf("best route to %v: path %v lock=%v", p, best.ASPath, best.Lock)
	}

	if *listen != "" {
		expect, err := parseAccept(*accept)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stampd:", err)
			os.Exit(2)
		}
		addr, err := sp.Listen(*listen, expect)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stampd:", err)
			os.Exit(1)
		}
		log.Printf("listening on %v", addr)
	}
	for _, p := range peers {
		if err := sp.Dial(p.addr, p.as, p.rel); err != nil {
			fmt.Fprintln(os.Stderr, "stampd:", err)
			os.Exit(1)
		}
		log.Printf("dialing %s (AS%d, %v)", p.addr, p.as, p.rel)
	}
	if *originate != "" {
		pfx := wire.MustPrefix(*originate)
		sp.Originate(pfx, uint16(*lock))
		log.Printf("originating %v (lock provider AS%d)", pfx, *lock)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	sp.Close()
}

func parsePeer(v string) (peerFlag, error) {
	parts := strings.Split(v, ",")
	if len(parts) != 3 {
		return peerFlag{}, fmt.Errorf("want addr,AS,rel, got %q", v)
	}
	as, err := strconv.ParseUint(parts[1], 10, 16)
	if err != nil {
		return peerFlag{}, fmt.Errorf("bad AS %q", parts[1])
	}
	rel, err := parseRel(parts[2])
	if err != nil {
		return peerFlag{}, err
	}
	return peerFlag{addr: parts[0], as: uint16(as), rel: rel}, nil
}

func parseAccept(v string) (map[uint16]topology.Rel, error) {
	out := make(map[uint16]topology.Rel)
	if v == "" {
		return out, nil
	}
	for _, item := range strings.Split(v, ";") {
		parts := strings.Split(item, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("accept: want AS,rel, got %q", item)
		}
		as, err := strconv.ParseUint(parts[0], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("accept: bad AS %q", parts[0])
		}
		rel, err := parseRel(parts[1])
		if err != nil {
			return nil, err
		}
		out[uint16(as)] = rel
	}
	return out, nil
}

func parseRel(s string) (topology.Rel, error) {
	switch s {
	case "customer":
		return topology.RelCustomer, nil
	case "peer":
		return topology.RelPeer, nil
	case "provider":
		return topology.RelProvider, nil
	}
	return topology.RelNone, fmt.Errorf("bad relationship %q (customer|peer|provider)", s)
}
