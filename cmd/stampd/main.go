// Command stampd is a deprecated shim over `stamp daemon`: one live
// STAMP routing process (one color) speaking the wire protocol over
// TCP. This binary keeps the old flag surface working for one release
// and will then be removed.
package main

import (
	"os"

	"stamp/internal/cli"
)

func main() {
	os.Exit(cli.LegacyDaemon(cli.SignalContext(), os.Args[1:], os.Stdout, os.Stderr))
}
