// Command stampflood is a deprecated shim over `stamp flood`: the
// packet-level workload driver now runs as the lab registry's loss
// experiment behind the unified cmd/stamp CLI. This binary keeps the
// old flag surface working for one release and will then be removed.
package main

import (
	"os"

	"stamp/internal/cli"
)

func main() {
	os.Exit(cli.LegacyFlood(cli.SignalContext(), os.Args[1:], os.Stdout, os.Stderr))
}
