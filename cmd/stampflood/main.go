// Command stampflood is the packet-level workload driver: it injects
// per-source flow batches against a converging routing system and
// reports time-resolved delivery/loss/stretch curves.
//
// The sim backend runs the loss-curve experiment — many random workload
// instances of a failure scenario, each sampled at virtual-time ticks by
// the batched data-plane walker, sharded over a worker pool with
// bit-identical output for any -workers:
//
//	stampflood -n 400 -scenario two-links-shared -trials 8 -workers 4
//	stampflood -n 400 -scenario link-flap -protocol bgp,stamp -json
//
// The emu backend drives the same flows through a live fabric of real
// STAMP speakers (internal/emu) during the same script and
// differentially validates transient deliverability against the
// simulator; any per-source divergence in the converged data plane exits
// nonzero:
//
//	stampflood -n 100 -backend emu -scenario link-failure
//	stampflood -n 60 -backend emu -scenario link-flap -transport tcp
//
// Scenarios: link-failure (alias single-link), two-links-apart,
// two-links-shared, node-failure, link-flap, prefix-withdraw.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"stamp/internal/emu"
	"stamp/internal/experiments"
	"stamp/internal/forwarding"
	"stamp/internal/scenario"
	"stamp/internal/topology"
	"stamp/internal/traffic"
)

func main() {
	var (
		n         = flag.Int("n", 400, "topology size (ASes) when generating")
		seed      = flag.Int64("seed", 1, "master seed (topology when generating, workload always)")
		topo      = flag.String("topo", "", "CAIDA AS-rel file to load instead of generating")
		scName    = flag.String("scenario", "link-failure", "failure scenario: "+strings.Join(scenario.Names(), ", "))
		backend   = flag.String("backend", "sim", "injection backend: sim (virtual-time loss curves) or emu (live fabric + parity)")
		protoCSV  = flag.String("protocol", "all", "sim-backend protocols: all or csv of bgp,rbgp-norci,rbgp,stamp")
		flows     = flag.Int("flows", 1, "flows per source AS (one packet per flow per tick)")
		tick      = flag.Duration("tick", 0, "sampling interval (0 = backend default: 25ms virtual, 10ms wall-clock)")
		ticks     = flag.Int("ticks", 0, "samples per run (0 = backend default: 2400 sim, 150 emu)")
		trials    = flag.Int("trials", 8, "random workload instances (sim backend)")
		workers   = flag.Int("workers", 0, "worker pool size (0 = one per CPU)")
		transport = flag.String("transport", "pipe", "emu-backend session transport: pipe or tcp")
		jsonOut   = flag.Bool("json", false, "emit results as JSON on stdout")
		progress  = flag.Bool("progress", false, "report sim-backend shard progress on stderr")
	)
	flag.Parse()

	g, err := loadTopology(*topo, *n, *seed)
	if err != nil {
		fail(err)
	}

	switch *backend {
	case "sim":
		runSimBackend(g, *scName, *protoCSV, *flows, *tick, *ticks, *trials, *workers, *seed, *jsonOut, *progress)
	case "emu":
		runEmuBackend(g, *scName, *transport, *flows, *tick, *ticks, *seed, *jsonOut)
	default:
		fail(fmt.Errorf("unknown backend %q (want sim or emu)", *backend))
	}
}

// parseProtocols maps the -protocol flag onto experiment protocols.
func parseProtocols(csv string) ([]experiments.Protocol, error) {
	if csv == "all" || csv == "" {
		return experiments.AllProtocols(), nil
	}
	back := map[traffic.Protocol]experiments.Protocol{
		traffic.BGP:       experiments.ProtoBGP,
		traffic.RBGPNoRCI: experiments.ProtoRBGPNoRCI,
		traffic.RBGP:      experiments.ProtoRBGP,
		traffic.STAMP:     experiments.ProtoSTAMP,
	}
	var out []experiments.Protocol
	for _, name := range strings.Split(csv, ",") {
		tp, err := traffic.ParseProtocol(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, back[tp])
	}
	return out, nil
}

func runSimBackend(g *topology.Graph, scName, protoCSV string, flows int, tick time.Duration, ticks, trials, workers int, seed int64, jsonOut, progress bool) {
	protos, err := parseProtocols(protoCSV)
	if err != nil {
		fail(err)
	}
	opts := experiments.LossOpts{
		G: g, Trials: trials, Seed: seed, Scenario: scName,
		Protocols: protos, Flows: flows, Tick: tick, Ticks: ticks,
		Workers: workers,
	}
	if progress {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rloss shards %d/%d", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	res, err := experiments.RunLossCurves(opts)
	if err != nil {
		fail(err)
	}
	if jsonOut {
		emitJSON(res)
		return
	}
	fmt.Printf("stampflood — %d ASes, %d flows/source, backend sim\n\n", g.Len(), res.Flows)
	res.Print(os.Stdout)
}

// parityReport is the JSON document of one emu-backend run (CI archives
// these as BENCH_*.json artifacts).
type parityReport struct {
	Scenario    string               `json:"scenario"`
	Transport   string               `json:"transport"`
	Dest        topology.ASN         `json:"dest"`
	Sim         *traffic.Curve       `json:"sim"`
	Live        *traffic.Curve       `json:"live"`
	Divergences []traffic.Divergence `json:"divergences"`
}

func runEmuBackend(g *topology.Graph, scName, transport string, flows int, tick time.Duration, ticks int, seed int64, jsonOut bool) {
	script, err := scenario.Named(scName, g, seed)
	if err != nil {
		fail(err)
	}
	res, err := traffic.RunParity(traffic.EmuOpts{
		Fabric: emu.Options{Graph: g, Transport: transport},
		Script: script,
		Flows:  flows,
		Tick:   tick,
		Ticks:  ticks,
	}, seed)
	if err != nil {
		fail(err)
	}
	if jsonOut {
		emitJSON(parityReport{
			Scenario: scName, Transport: transport, Dest: script.Dest,
			Sim: res.Sim, Live: res.Live,
			Divergences: append([]traffic.Divergence{}, res.Divergences...),
		})
	} else {
		emitParityText(g, scName, transport, script, res)
	}
	if len(res.Divergences) > 0 {
		os.Exit(1)
	}
}

func emitParityText(g *topology.Graph, scName, transport string, script scenario.Script, res *traffic.ParityResult) {
	fmt.Printf("stampflood — %d ASes live over %s, scenario %q at destination AS%d, backend emu\n\n",
		g.Len(), transport, scName, script.Dest)
	row := func(label string, c *traffic.Curve) {
		finalBad := 0
		for _, s := range c.Final.Status {
			if s != forwarding.Delivered {
				finalBad++
			}
		}
		fmt.Printf("  %-4s lost %6d packet-ticks (%d transient), %3d sources ever affected, %d undelivered at fixpoint\n",
			label, c.LostPacketTicks, c.TransientLostPacketTicks, c.EverAffected, finalBad)
	}
	row("sim", res.Sim)
	row("live", res.Live)
	if len(res.Divergences) == 0 {
		fmt.Println("\ntransient-deliverability parity: live data plane == sim data plane (0 divergences)")
		return
	}
	fmt.Printf("\ntransient-deliverability parity FAILED: %d divergences\n", len(res.Divergences))
	for _, d := range res.Divergences {
		fmt.Printf("  %v\n", d)
	}
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fail(err)
	}
}

func loadTopology(path string, n int, seed int64) (*topology.Graph, error) {
	if path == "" {
		return topology.GenerateDefault(n, seed)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, _, err := topology.ReadASRel(f)
	return g, err
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "stampflood:", err)
	os.Exit(1)
}
