// Command asrel infers AS business relationships from observed AS paths
// using Gao's algorithm (the same inference the paper applies to
// RouteViews data).
//
// Input: one AS path per line, ASNs separated by whitespace.
//
// Usage:
//
//	asrel -paths paths.txt
//	topogen -n 500 | ...            # see README for a full pipeline
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"stamp/internal/topology"
)

func main() {
	var (
		pathsFile = flag.String("paths", "", "file with one AS path per line (default stdin)")
		ratio     = flag.Float64("ratio", 0, "peering degree-ratio threshold (0 = default)")
	)
	flag.Parse()

	in := os.Stdin
	if *pathsFile != "" {
		f, err := os.Open(*pathsFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "asrel:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	var paths [][]topology.ASN
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		path := make([]topology.ASN, 0, len(fields))
		for _, f := range fields {
			v, err := strconv.ParseInt(f, 10, 32)
			if err != nil {
				fmt.Fprintf(os.Stderr, "asrel: line %d: bad ASN %q\n", lineNo, f)
				os.Exit(1)
			}
			path = append(path, topology.ASN(v))
		}
		paths = append(paths, path)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "asrel:", err)
		os.Exit(1)
	}

	params := topology.DefaultGaoParams()
	if *ratio > 0 {
		params.PeerDegreeRatio = *ratio
	}
	inferred := topology.InferRelationships(paths, params)
	for _, ir := range inferred {
		switch ir.Rel {
		case topology.InferredAProviderOfB:
			fmt.Printf("%d|%d|-1\n", ir.A, ir.B)
		case topology.InferredBProviderOfA:
			fmt.Printf("%d|%d|-1\n", ir.B, ir.A)
		case topology.InferredPeer:
			fmt.Printf("%d|%d|0\n", ir.A, ir.B)
		}
	}
	fmt.Fprintf(os.Stderr, "inferred %d relationships from %d paths\n", len(inferred), len(paths))
}
