// Command asrel is a deprecated shim over `stamp asrel`: infer AS
// business relationships from observed AS paths using Gao's algorithm.
// This binary keeps the old flag surface working for one release and
// will then be removed.
package main

import (
	"context"
	"os"

	"stamp/internal/cli"
)

func main() {
	os.Exit(cli.LegacyAsrel(context.Background(), os.Args[1:], os.Stdout, os.Stderr))
}
