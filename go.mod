module stamp

go 1.24
