// Livespeakers: run a miniature STAMP deployment over real TCP on
// localhost, using the internal/emu fabric. Four ASes form the diamond
//
//	    AS3 (tier-1)
//	   /     \
//	AS1       AS2
//	   \     /
//	    AS0  (origin, multihomed)
//
// where every link carries one live red and one live blue wire-protocol
// session. The origin announces its prefix blue+locked to AS1 and red to
// AS2; the tier-1 ends up with both colors through different customers —
// the complementary paths STAMP wants. The demo then fails the locked
// blue link AS0--AS1 in wall-clock time, shows blue re-rooting through
// AS2, and differentially validates the final tables against the
// discrete-event simulator.
//
//	go run ./examples/livespeakers
package main

import (
	"fmt"
	"log"

	"stamp/internal/emu"
	"stamp/internal/scenario"
	"stamp/internal/topology"
)

func main() {
	g := topology.NewGraph(4)
	for _, l := range [][2]topology.ASN{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if err := g.AddProviderLink(l[0], l[1]); err != nil {
			log.Fatal(err)
		}
	}
	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}

	script := scenario.Script{
		Name: "fail-locked-blue-link",
		Dest: 0,
		Events: []scenario.Event{
			{Op: scenario.OpFailLink, A: 0, B: 1},
		},
	}

	// Phase 1: boot over real TCP loopback and converge without failures,
	// to show the complementary paths.
	f, err := emu.New(emu.Options{Graph: g, Transport: "tcp"})
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Boot(); err != nil {
		log.Fatal(err)
	}
	f.Originate(script.Dest)
	if err := f.WaitConverged(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("all sessions established, fleet converged")

	t := f.Tables()
	fmt.Printf("tier-1 AS3 reached by both processes:\n")
	fmt.Printf("  red : path %v\n", t.Red[3])
	fmt.Printf("  blue: path %v\n", t.Blue[3])
	fmt.Println("\nthe two AS paths are node-disjoint below the tier-1 —")
	fmt.Println("exactly the complementary routes STAMP maintains.")

	// Phase 2: kill the locked blue link for real and watch blue re-root.
	fmt.Println("\nfailing link AS0--AS1 (the locked blue uplink)...")
	if err := f.RunScript(script); err != nil {
		log.Fatal(err)
	}
	if err := f.WaitConverged(); err != nil {
		log.Fatal(err)
	}
	t = f.Tables()
	fmt.Printf("after failure, tier-1 AS3:\n")
	fmt.Printf("  red : path %v\n", t.Red[3])
	fmt.Printf("  blue: path %v (re-rooted through AS2)\n", t.Blue[3])
	f.Close()

	// Differential validation: the live fleet must have converged to the
	// simulator's exact tables on the same topology and script.
	simT, err := emu.SimTables(nil, g, script, emu.ReferenceParams(), 1)
	if err != nil {
		log.Fatal(err)
	}
	if divs := simT.Diff(t); len(divs) > 0 {
		for _, d := range divs {
			fmt.Println("divergence:", d)
		}
		log.Fatal("live tables diverged from the simulator")
	}
	fmt.Println("\ndifferential validation: live tables == simulator tables")
	if t.Blue[3] == nil || t.Blue[3][0] != 2 {
		log.Fatal("blue did not re-root through AS2")
	}
}
