// Livespeakers: run a miniature STAMP deployment over real TCP on
// localhost. Five routing processes form the topology
//
//	     AS64515 (tier-1)
//	     /      \
//	AS64513    AS64514
//	     \      /
//	     AS64512  (origin, multihomed)
//
// where each link is a live wire-protocol session. The origin announces
// its prefix blue+locked to AS64513 and red to AS64514; the tier-1 ends
// up with both colors through different customers — the complementary
// paths STAMP wants.
//
//	go run ./examples/livespeakers
package main

import (
	"fmt"
	"log"
	"time"

	"stamp/internal/netd"
	"stamp/internal/topology"
	"stamp/internal/wire"
)

func main() {
	mk := func(as uint16, color byte) *netd.Speaker {
		return netd.NewSpeaker(netd.SpeakerConfig{
			AS: as, RouterID: uint32(as), Color: color,
			HoldTime: 5 * time.Second,
		})
	}

	// One process per color per AS; sessions are per color, like the
	// paper's two-process design. For brevity this demo wires only the
	// sessions each color actually uses.
	type router struct{ red, blue *netd.Speaker }
	routers := map[uint16]router{
		64512: {mk(64512, 0), mk(64512, 1)},
		64513: {mk(64513, 0), mk(64513, 1)},
		64514: {mk(64514, 0), mk(64514, 1)},
		64515: {mk(64515, 0), mk(64515, 1)},
	}
	defer func() {
		for _, r := range routers {
			r.red.Close()
			r.blue.Close()
		}
	}()

	// Listeners: transit ASes accept their customers; tier-1 accepts both
	// transits.
	listen := func(sp *netd.Speaker, expect map[uint16]netd.Rel) string {
		addr, err := sp.Listen("127.0.0.1:0", expect)
		if err != nil {
			log.Fatal(err)
		}
		return addr.String()
	}
	b13 := listen(routers[64513].blue, map[uint16]netd.Rel{64512: topology.RelCustomer})
	r14 := listen(routers[64514].red, map[uint16]netd.Rel{64512: topology.RelCustomer})
	b15 := listen(routers[64515].blue, map[uint16]netd.Rel{64513: topology.RelCustomer})
	r15 := listen(routers[64515].red, map[uint16]netd.Rel{64514: topology.RelCustomer})

	dial := func(sp *netd.Speaker, addr string, as uint16) {
		if err := sp.Dial(addr, as, topology.RelProvider); err != nil {
			log.Fatal(err)
		}
		if err := sp.WaitEstablished(as, 3*time.Second); err != nil {
			log.Fatal(err)
		}
	}
	// Origin's blue process peers with 64513, red with 64514.
	dial(routers[64512].blue, b13, 64513)
	dial(routers[64512].red, r14, 64514)
	// Transit blue chain continues to the tier-1 (lock propagation);
	// transit red does too.
	dial(routers[64513].blue, b15, 64515)
	dial(routers[64514].red, r15, 64515)

	fmt.Println("all sessions established")

	pfx := wire.MustPrefix("198.51.100.0/24")
	routers[64512].blue.Originate(pfx, 64513) // locked blue to 64513
	routers[64512].red.Originate(pfx, 64513)  // red skips the locked provider

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		red := routers[64515].red.Best(pfx)
		blue := routers[64515].blue.Best(pfx)
		if red != nil && blue != nil {
			fmt.Printf("tier-1 AS64515 reached by both processes:\n")
			fmt.Printf("  red : path %v\n", red.ASPath)
			fmt.Printf("  blue: path %v (lock=%v)\n", blue.ASPath, blue.Lock)
			fmt.Println("\nthe two AS paths are node-disjoint below the tier-1 —")
			fmt.Println("exactly the complementary routes STAMP maintains.")
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	log.Fatal("routes did not propagate in time")
}
