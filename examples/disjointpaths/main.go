// Disjointpaths: the Φ analysis of §6.1 — how likely is it that STAMP's
// random locked-blue-provider selection leaves every AS with both a red
// and a blue path to each destination, and how much does intelligent
// selection at the origin help?
//
//	go run ./examples/disjointpaths
package main

import (
	"fmt"
	"log"
	"os"

	"stamp/internal/disjoint"
	"stamp/internal/experiments"
	"stamp/internal/topology"
)

func main() {
	g, err := topology.GenerateDefault(1500, 21)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology: %d ASes, %d links, %d tier-1s\n\n", g.Len(), g.EdgeCount(), len(g.Tier1s()))

	opts := disjoint.DefaultPhiOpts()

	random := experiments.RunFigure1(g, opts)
	random.Print(os.Stdout)
	fmt.Println()

	intelligent := experiments.RunFigure1Intelligent(g, opts)
	intelligent.Print(os.Stdout)
	fmt.Println()

	partial := experiments.RunPartialDeployment(g)
	partial.Print(os.Stdout)

	fmt.Println()
	fmt.Printf("summary: random Φ=%.3f → intelligent Φ=%.3f (paper: 0.92 → 0.97);\n",
		random.Mean, intelligent.Mean)
	fmt.Printf("tier-1-only deployment still protects %.0f%% of ASes (paper: ~75%%).\n",
		100*partial.ProtectedFrac)
}
