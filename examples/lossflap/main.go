// Lossflap: watch the data plane ride out a flapping link. A provider
// link of the destination fails and recovers twice; BGP re-converges
// through every flap while STAMP's switch-once forwarding keeps packets
// flowing. The packet-level traffic engine samples the forwarding tables
// every 25ms of virtual time and prints the resulting loss curves.
//
//	go run ./examples/lossflap
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"stamp/internal/scenario"
	"stamp/internal/topology"
	"stamp/internal/traffic"
)

func main() {
	g, err := topology.GenerateDefault(200, 42)
	if err != nil {
		log.Fatal(err)
	}
	script, err := scenario.Named("link-flap", g, 7)
	if err != nil {
		log.Fatal(err)
	}
	l := script.Sorted()[0]
	fmt.Printf("topology: %d ASes; flapping link %d--%d (%d fail/restore rounds) at destination AS%d\n\n",
		g.Len(), l.A, l.B, scenario.FlapCycles, script.Dest)

	curves := map[traffic.Protocol]*traffic.Curve{}
	for _, proto := range []traffic.Protocol{traffic.BGP, traffic.STAMP} {
		cur, err := traffic.RunSim(traffic.SimOpts{
			G: g, Proto: proto, Script: script, Seed: 11,
			Tick: 25 * time.Millisecond, Ticks: 1600, // a 40s window
		})
		if err != nil {
			log.Fatal(err)
		}
		curves[proto] = cur
		fmt.Printf("%-6v lost %5d packet-ticks over the window, %3d sources ever affected\n",
			proto, cur.LostPacketTicks, cur.EverAffected)
	}

	// Render the first two seconds — the flap rounds themselves — as a
	// compact loss sparkline (each cell pools 50ms, '█' = many packets
	// lost).
	const cells, perCell = 40, 2
	fmt.Printf("\nloss over the first %.1fs (one cell = %dms):\n",
		float64(cells)*0.05, perCell*25)
	for _, proto := range []traffic.Protocol{traffic.BGP, traffic.STAMP} {
		c := curves[proto]
		var b strings.Builder
		for cell := 0; cell < cells; cell++ {
			lost := 0.0
			for i := 0; i < perCell; i++ {
				lost += c.Lost.Sum(cell*perCell + i)
			}
			b.WriteRune(spark(lost / perCell))
		}
		fmt.Printf("  %-6v |%s|\n", proto, b.String())
	}
	fmt.Println("\nevery '█' is a window where packets injected at affected sources were dropped;")
	fmt.Println("STAMP packets switch color once and keep flowing through the flaps (§5.1).")
}

// spark maps a mean lost-packet count to a bar glyph.
func spark(lost float64) rune {
	switch {
	case lost == 0:
		return ' '
	case lost < 5:
		return '░'
	case lost < 20:
		return '▒'
	case lost < 50:
		return '▓'
	default:
		return '█'
	}
}
