// Quickstart: build a small AS topology, run STAMP to convergence, and
// inspect the complementary red/blue paths an AS obtains.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"stamp/internal/core"
	"stamp/internal/sim"
	"stamp/internal/topology"
)

func main() {
	// A synthetic Internet-like topology: tier-1 clique on top, transit
	// providers in the middle, multihomed stubs at the edge.
	g, err := topology.GenerateDefault(200, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology: %d ASes, %d links, tier-1s %v\n", g.Len(), g.EdgeCount(), g.Tier1s())

	// One simulation = one destination prefix. Pick a multihomed stub.
	var dest topology.ASN
	for a := g.Len() - 1; a >= 0; a-- {
		if g.IsMultihomed(topology.ASN(a)) {
			dest = topology.ASN(a)
			break
		}
	}
	fmt.Printf("destination AS %d (providers %v)\n\n", dest, g.Providers(dest))

	// Wire a STAMP node (red + blue process) into every AS.
	engine := sim.NewEngine(sim.DefaultParams(), 7)
	network := sim.NewNetwork(engine, g)
	nodes := make([]*core.Node, g.Len())
	for a := 0; a < g.Len(); a++ {
		nodes[a] = core.NewNode(topology.ASN(a), g, engine, network)
	}

	// Originate the prefix and run the event-driven simulation until all
	// processes converge.
	nodes[dest].Originate()
	events, err := engine.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged after %d events (%.1fs simulated)\n", events, engine.Now().Seconds())
	fmt.Printf("locked blue provider of origin: AS %d\n\n", nodes[dest].LockedProvider())

	// Show the complementary paths a few ASes hold.
	shown := 0
	for a := 0; a < g.Len() && shown < 5; a++ {
		if topology.ASN(a) == dest {
			continue
		}
		red, blue := nodes[a].Red.Best(), nodes[a].Blue.Best()
		if red == nil || blue == nil {
			continue
		}
		rp := append([]topology.ASN{topology.ASN(a)}, red.Path...)
		bp := append([]topology.ASN{topology.ASN(a)}, blue.Path...)
		disjoint, err := topology.DownhillDisjoint(g, rp, bp)
		if err != nil {
			continue
		}
		fmt.Printf("AS %-4d red  %v\n", a, rp)
		fmt.Printf("        blue %v  (downhill disjoint: %v)\n", bp, disjoint)
		shown++
	}
}
