// Failover: replay the paper's headline experiment in miniature — fail a
// provider link of a multihomed destination and watch how many ASes
// suffer transient loops or blackholes under BGP, R-BGP, and STAMP.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"os"

	"stamp/internal/experiments"
	"stamp/internal/topology"
)

func main() {
	g, err := topology.GenerateDefault(800, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology: %d ASes, %d links\n\n", g.Len(), g.EdgeCount())

	fmt.Println("Single provider-link failure at a multihomed destination")
	fmt.Println("(Figure 2 workload, miniature scale):")
	res, err := experiments.RunTransient(experiments.TransientOpts{
		G: g, Trials: 8, Seed: 3, Scenario: experiments.ScenarioSingleLink,
	})
	if err != nil {
		log.Fatal(err)
	}
	res.Print(os.Stdout)

	fmt.Println()
	fmt.Println("Two link failures sharing an AS (Figure 3(b) workload):")
	res, err = experiments.RunTransient(experiments.TransientOpts{
		G: g, Trials: 8, Seed: 5, Scenario: experiments.ScenarioTwoLinksShared,
	})
	if err != nil {
		log.Fatal(err)
	}
	res.Print(os.Stdout)

	fmt.Println()
	fmt.Println("STAMP treats both failed links as one routing event (they share")
	fmt.Println("an AS node), so its node-disjoint paths keep working — that is")
	fmt.Println("the scenario where the paper shows STAMP beating even R-BGP.")
}
